package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"time"

	"topk"
	"topk/internal/obs"
)

// Node hosts a subset of a partitioned index's shards, each restored
// from its own snapshot file as a standalone one-shard index
// (topk.LoadShard). It answers shard requests in-process (as a Replica)
// and over HTTP (Handler). A node is read-only: bootstrap loads the
// shards once and queries share them without locking, matching the
// engine's any-number-of-readers contract.
type Node struct {
	id      string
	problem string
	shards  map[int]topk.Served

	reg      *obs.Registry
	requests *obs.Counter
	queries  *obs.Counter
}

// NewNode builds a node serving the given shards of one problem's
// partitioned index.
func NewNode(id, problem string, shards map[int]topk.Served) *Node {
	n := &Node{id: id, problem: problem, shards: shards, reg: obs.NewRegistry()}
	n.requests = n.reg.NewCounter("topk_node_shard_requests_total",
		"Shard requests answered by this node.")
	n.queries = n.reg.NewCounter("topk_node_queries_total",
		"Individual queries answered across all shard requests.")
	n.reg.NewGauge("topk_node_shards", "Shards this node serves.").Set(int64(len(shards)))
	items := 0
	for _, sv := range shards {
		items += sv.Len()
	}
	n.reg.NewGauge("topk_node_items", "Live items across this node's shards.").Set(int64(items))
	return n
}

// ID returns the node's cluster ID.
func (n *Node) ID() string { return n.id }

// ShardIDs returns the shards this node serves, ascending.
func (n *Node) ShardIDs() []int {
	out := make([]int, 0, len(n.shards))
	for s := range n.shards {
		out = append(out, s)
	}
	sort.Ints(out)
	return out
}

// Info describes the node's serving state.
func (n *Node) Info(context.Context) (NodeInfo, error) {
	items := 0
	for _, sv := range n.shards {
		items += sv.Len()
	}
	return NodeInfo{ID: n.id, Problem: n.problem, Shards: n.ShardIDs(), Items: items}, nil
}

// QueryShard answers one shard request: decode the wire queries, build
// the QueryCtx the request describes, run the shard's engine on the
// batch path, and render per-query results in the /query wire shape.
// The result is a deterministic function of (request, shard snapshot) —
// the property hedged reads rely on.
func (n *Node) QueryShard(_ context.Context, req ShardRequest) (ShardResponse, error) {
	sv, ok := n.shards[req.Shard]
	if !ok {
		return ShardResponse{}, fmt.Errorf("node %s does not serve shard %d (serves %v)", n.id, req.Shard, n.ShardIDs())
	}
	if len(req.Queries) == 0 {
		return ShardResponse{}, fmt.Errorf("empty query batch")
	}
	if req.K < 1 {
		return ShardResponse{}, fmt.Errorf("need k >= 1, got %d", req.K)
	}
	qs := make([]any, len(req.Queries))
	for i, raw := range req.Queries {
		q, err := sv.DecodeQuery(raw)
		if err != nil {
			return ShardResponse{}, fmt.Errorf("query %d: %w", i, err)
		}
		qs[i] = q
	}
	ctx := topk.QueryCtx{IOBudget: req.BudgetIOs, DegradeToMax: req.Degrade}
	switch {
	case req.DeadlineMS > 0:
		ctx.Deadline = time.Now().Add(time.Duration(req.DeadlineMS) * time.Millisecond)
	case req.DeadlineMS < 0:
		// The deadline expired before the request arrived: an already-past
		// Deadline makes the engine abort (or degrade) deterministically.
		ctx.Deadline = time.Now().Add(-time.Millisecond)
	}
	res := sv.QueryBatchCtx(ctx, qs, req.K, 0)
	n.requests.Inc()
	n.queries.Add(int64(len(qs)))
	out := ShardResponse{Results: make([]ShardResult, len(res))}
	for i, r := range res {
		sr := ShardResult{
			Items: make([]WireItem, 0, len(r.Items)),
			Reads: r.Stats.Reads, Writes: r.Stats.Writes, Hits: r.Stats.Hits, IOs: r.Stats.IOs(),
			Outcome: r.Outcome.String(),
		}
		if r.Err != nil {
			sr.Error = r.Err.Error()
		}
		for _, it := range r.Items {
			sr.Items = append(sr.Items, WireItem{Weight: it.Weight, Label: it.Label})
		}
		out.Results[i] = sr
	}
	return out, nil
}

// Handler returns the node's HTTP surface:
//
//	POST /cluster/query   ShardRequest -> ShardResponse
//	GET  /cluster/info    NodeInfo
//	GET  /metrics         Prometheus text exposition
//	GET  /healthz         liveness
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/cluster/query", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "POST only", http.StatusMethodNotAllowed)
			return
		}
		var req ShardRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 8<<20)).Decode(&req); err != nil {
			http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
			return
		}
		resp, err := n.QueryShard(r.Context(), req)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(resp)
	})
	mux.HandleFunc("/cluster/info", func(w http.ResponseWriter, r *http.Request) {
		info, _ := n.Info(r.Context())
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(info)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		n.reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}
