package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"topk"
)

// Server is the coordinator's HTTP surface. Its POST /query is
// byte-compatible with topk-serve's (same body, same response envelope
// modulo the elapsed timing string), so clients and topk-loadgen work
// against either unchanged.
type Server struct {
	co      *Coordinator
	snapDir string
	nodes   []string
}

// NewServer wraps a coordinator. snapDir, when non-empty, is the
// partitioned snapshot directory the coordinator also serves for
// replica bootstrap (GET /snapshot/manifest, /snapshot/file/{name}).
// nodes is the full cluster node ID list handed out via
// GET /cluster/config — the list ownership is computed over.
func NewServer(co *Coordinator, snapDir string, nodes []string) *Server {
	return &Server{co: co, snapDir: snapDir, nodes: nodes}
}

// Handler returns the coordinator's HTTP mux:
//
//	POST /query             topk-serve-compatible query batches
//	GET  /cluster/config    cluster geometry for node bootstrap
//	GET  /snapshot/...      snapshot shipping (when configured)
//	GET  /metrics           Prometheus text exposition
//	GET  /readyz            200 once every shard has a live owner
//	GET  /healthz           liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/cluster/config", func(w http.ResponseWriter, _ *http.Request) {
		cfg := s.co.Config()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(RemoteConfig{
			Problem: cfg.Problem, Shards: cfg.Shards,
			Replication: cfg.Replication, Nodes: s.nodes,
		})
	})
	if s.snapDir != "" {
		mux.Handle("/snapshot/", SnapshotHandler(s.snapDir))
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.co.Metrics().Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if err := s.co.Ready(r.Context()); err != nil {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		fmt.Fprintln(w, "ready")
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req struct {
		Queries     []json.RawMessage `json:"queries"`
		K           int               `json:"k"`
		Parallelism int               `json:"parallelism"` // accepted for parity; nodes pick their own
		BudgetIOs   int64             `json:"budget_ios,omitempty"`
		DeadlineMS  int64             `json:"deadline_ms,omitempty"`
		Degrade     *bool             `json:"degrade,omitempty"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 10000 {
		http.Error(w, "need 1..10000 queries", http.StatusBadRequest)
		return
	}
	if req.K <= 0 || req.K > 1000 {
		http.Error(w, "need 1 <= k <= 1000", http.StatusBadRequest)
		return
	}
	start := time.Now()
	results, err := s.co.Query(r.Context(), req.Queries, req.K, QueryOptions{
		BudgetIOs: req.BudgetIOs, DeadlineMS: req.DeadlineMS, Degrade: req.Degrade,
	})
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	cfg := s.co.Config()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"problem": cfg.Problem,
		"shards":  cfg.Shards,
		"k":       req.K,
		"elapsed": time.Since(start).String(),
		"results": results,
	})
}

// SnapshotHandler serves a partitioned snapshot directory for replica
// bootstrap:
//
//	GET /snapshot/manifest      the MANIFEST.json
//	GET /snapshot/file/{name}   one manifest-listed shard file
//
// Only files the manifest lists are served, and only by base name — the
// handler never reaches outside dir. topk-serve mounts this next to its
// own endpoints so a running single-process server can seed a cluster.
func SnapshotHandler(dir string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/snapshot/manifest", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		b, err := os.ReadFile(filepath.Join(dir, topk.ManifestName))
		if err != nil {
			http.Error(w, "no snapshot manifest: "+err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(b)
	})
	mux.HandleFunc("/snapshot/file/", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		name := strings.TrimPrefix(r.URL.Path, "/snapshot/file/")
		if name == "" || name != filepath.Base(name) {
			http.Error(w, "bad file name", http.StatusBadRequest)
			return
		}
		mf, err := topk.ReadManifest(dir)
		if err != nil {
			http.Error(w, "no snapshot manifest: "+err.Error(), http.StatusNotFound)
			return
		}
		listed := false
		for _, f := range mf.Files {
			if f.Name == name {
				listed = true
				break
			}
		}
		if !listed {
			http.Error(w, fmt.Sprintf("file %q not in manifest", name), http.StatusNotFound)
			return
		}
		f, err := os.Open(filepath.Join(dir, name))
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		defer f.Close()
		w.Header().Set("Content-Type", "application/octet-stream")
		io.Copy(w, f)
	})
	return mux
}
