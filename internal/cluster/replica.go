// Package cluster is the multi-process serving tier over the library's
// shard layer: N-way replica groups (rendezvous-hashed shard → node
// ownership at replication factor R), a coordinator that fans each
// query batch out to one replica per shard with hedged reads, and the
// request-lifecycle degradation ladder extended across processes.
//
// The paper gives per-process I/O bounds; this package is the serving
// discipline on top. Three invariants carry correctness across the
// process boundary:
//
//  1. Partition exactness (Lemma 2): every shard is the same engine a
//     single-process Sharded index would hold, restored from the same
//     per-shard snapshot file, so the coordinator's k-way merge of
//     per-shard top-k core-sets is byte-identical to the one-process
//     answer — the conformance suite asserts this for every registered
//     problem.
//  2. Replica interchangeability: replicas of a shard restore from the
//     same snapshot file, so any of them produces the same determinstic
//     answer and stats — which is what makes hedged reads safe: racing
//     two replicas can change latency, never the answer.
//  3. Degradation monotonicity: a shard that trips its lifecycle limits
//     under DegradeToMax still contributes its exact local top-1, so
//     the merged head is the exact global maximum (OutcomeDegraded, a
//     correct prefix); only transport loss of a whole replica group
//     yields a typed refusal (OutcomeUnavailable), never a wrong
//     answer.
package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// ShardRequest is one shard's slice of a coordinator query batch, in
// the wire shape POST /cluster/query accepts.
type ShardRequest struct {
	Shard   int               `json:"shard"`
	Queries []json.RawMessage `json:"queries"`
	K       int               `json:"k"`
	// BudgetIOs caps the simulated I/Os per query on this shard
	// (0 = unbudgeted), mirroring QueryCtx.IOBudget.
	BudgetIOs int64 `json:"budget_ios,omitempty"`
	// DeadlineMS is the wall-clock time remaining when the coordinator
	// dispatched the request: > 0 milliseconds left, 0 no deadline, < 0
	// already expired (the node aborts immediately, degrading if asked).
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Degrade arms the top-1 Max fallback on abort.
	Degrade bool `json:"degrade,omitempty"`
}

// WireItem is one answer item in the /query wire shape.
type WireItem struct {
	Weight float64 `json:"weight"`
	Label  string  `json:"label,omitempty"`
}

// ShardResult is one query's answer from one shard — and, summed across
// shards by the coordinator, one query's slice of the client response.
// The field set and order match topk-serve's /query results exactly, so
// a coordinator is a drop-in target for existing clients and loadgen.
type ShardResult struct {
	Items   []WireItem `json:"items"`
	Reads   int64      `json:"reads"`
	Writes  int64      `json:"writes"`
	Hits    int64      `json:"hits"`
	IOs     int64      `json:"ios"`
	Outcome string     `json:"outcome"`
	Error   string     `json:"error,omitempty"`
}

// ShardResponse is a replica's answer to a ShardRequest: one
// ShardResult per query, positionally aligned.
type ShardResponse struct {
	Results []ShardResult `json:"results"`
}

// NodeInfo describes one node's serving state (GET /cluster/info).
type NodeInfo struct {
	ID      string `json:"id"`
	Problem string `json:"problem"`
	Shards  []int  `json:"shards"`
	Items   int    `json:"items"`
}

// A Replica can answer shard requests. *Node implements it in-process;
// *HTTPReplica fronts a node in another process. QueryShard must honor
// ctx cancellation on its wait (the coordinator cancels losers of a
// hedged race) and return an error only for transport-level failure —
// lifecycle aborts travel inside the ShardResults.
type Replica interface {
	ID() string
	QueryShard(ctx context.Context, req ShardRequest) (ShardResponse, error)
	Info(ctx context.Context) (NodeInfo, error)
}

// HTTPReplica drives a remote node's /cluster endpoints. The zero
// client means http.DefaultClient; cancellation rides the request
// context, which aborts the in-flight HTTP exchange.
type HTTPReplica struct {
	id     string
	base   string // e.g. "http://10.0.0.3:18111"
	client *http.Client
}

// NewHTTPReplica fronts the node at baseURL under the given cluster
// node ID (the name ownership is computed over).
func NewHTTPReplica(id, baseURL string, client *http.Client) *HTTPReplica {
	if client == nil {
		client = http.DefaultClient
	}
	return &HTTPReplica{id: id, base: baseURL, client: client}
}

// ID returns the replica's cluster node ID.
func (r *HTTPReplica) ID() string { return r.id }

// QueryShard posts the request to the node's /cluster/query.
func (r *HTTPReplica) QueryShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return ShardResponse{}, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, r.base+"/cluster/query", bytes.NewReader(body))
	if err != nil {
		return ShardResponse{}, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(hreq)
	if err != nil {
		return ShardResponse{}, fmt.Errorf("node %s: %w", r.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return ShardResponse{}, fmt.Errorf("node %s: %s: %s", r.id, resp.Status, bytes.TrimSpace(msg))
	}
	var out ShardResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return ShardResponse{}, fmt.Errorf("node %s: decoding response: %w", r.id, err)
	}
	return out, nil
}

// Info fetches the node's /cluster/info.
func (r *HTTPReplica) Info(ctx context.Context) (NodeInfo, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/cluster/info", nil)
	if err != nil {
		return NodeInfo{}, err
	}
	resp, err := r.client.Do(hreq)
	if err != nil {
		return NodeInfo{}, fmt.Errorf("node %s: %w", r.id, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return NodeInfo{}, fmt.Errorf("node %s: %s", r.id, resp.Status)
	}
	var info NodeInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		return NodeInfo{}, fmt.Errorf("node %s: decoding info: %w", r.id, err)
	}
	return info, nil
}
