package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"

	"topk"
	"topk/internal/shard"
)

// RemoteConfig is the cluster geometry a coordinator hands out via
// GET /cluster/config. Nodes derive their shard ownership from it and
// nothing else — every participant computing rendezvous ownership over
// the same node list agrees without further coordination.
type RemoteConfig struct {
	Problem     string   `json:"problem"`
	Shards      int      `json:"shards"`
	Replication int      `json:"replication"`
	Nodes       []string `json:"nodes"`
}

// FetchConfig downloads a coordinator's cluster config.
func FetchConfig(ctx context.Context, client *http.Client, baseURL string) (RemoteConfig, error) {
	if client == nil {
		client = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/cluster/config", nil)
	if err != nil {
		return RemoteConfig{}, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return RemoteConfig{}, fmt.Errorf("fetching cluster config: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return RemoteConfig{}, fmt.Errorf("fetching cluster config: %s", resp.Status)
	}
	var cfg RemoteConfig
	if err := json.NewDecoder(resp.Body).Decode(&cfg); err != nil {
		return RemoteConfig{}, fmt.Errorf("decoding cluster config: %w", err)
	}
	if cfg.Shards < 1 || len(cfg.Nodes) == 0 {
		return RemoteConfig{}, fmt.Errorf("implausible cluster config: %d shards, %d nodes", cfg.Shards, len(cfg.Nodes))
	}
	return cfg, nil
}

// OwnedShards returns the shards the given node ID owns under the
// config's rendezvous assignment, ascending.
func (cfg RemoteConfig) OwnedShards(id string) []int {
	var out []int
	for s := 0; s < cfg.Shards; s++ {
		for _, owner := range shard.Owners(s, cfg.Nodes, cfg.Replication) {
			if owner == id {
				out = append(out, s)
				break
			}
		}
	}
	return out
}

// FetchShards downloads the snapshot manifest plus the given shards'
// files from a coordinator (or any SnapshotHandler) into dir, creating
// it if needed. The result is a partial snapshot directory that
// topk.LoadShard can restore shard by shard; per-file CRCs are verified
// by the restore itself.
func FetchShards(ctx context.Context, client *http.Client, baseURL, dir string, shards []int) (topk.Manifest, error) {
	if client == nil {
		client = http.DefaultClient
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return topk.Manifest{}, err
	}
	raw, err := fetchBytes(ctx, client, baseURL+"/snapshot/manifest")
	if err != nil {
		return topk.Manifest{}, err
	}
	if err := os.WriteFile(filepath.Join(dir, topk.ManifestName), raw, 0o644); err != nil {
		return topk.Manifest{}, err
	}
	mf, err := topk.ReadManifest(dir)
	if err != nil {
		return topk.Manifest{}, err
	}
	byShard := make(map[int]topk.ManifestFile, len(mf.Files))
	for _, f := range mf.Files {
		byShard[f.Shard] = f
	}
	for _, s := range shards {
		entry, ok := byShard[s]
		if !ok {
			return topk.Manifest{}, fmt.Errorf("snapshot has no shard %d (manifest lists %d shards)", s, mf.Shards)
		}
		b, err := fetchBytes(ctx, client, baseURL+"/snapshot/file/"+entry.Name)
		if err != nil {
			return topk.Manifest{}, fmt.Errorf("shard %d: %w", s, err)
		}
		if int64(len(b)) != entry.Bytes {
			return topk.Manifest{}, fmt.Errorf("shard %d: got %d bytes, manifest says %d", s, len(b), entry.Bytes)
		}
		if err := os.WriteFile(filepath.Join(dir, entry.Name), b, 0o644); err != nil {
			return topk.Manifest{}, err
		}
	}
	return mf, nil
}

// LoadShards restores the given shards from a snapshot directory, each
// as a standalone one-shard index.
func LoadShards(dir string, shards []int, opts ...topk.Option) (map[int]topk.Served, error) {
	out := make(map[int]topk.Served, len(shards))
	for _, s := range shards {
		sv, err := topk.LoadShard(dir, s, opts...)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", s, err)
		}
		out[s] = sv
	}
	return out, nil
}

func fetchBytes(ctx context.Context, client *http.Client, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}
