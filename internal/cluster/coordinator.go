package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"topk"
	"topk/internal/obs"
	"topk/internal/shard"
)

// Tunables of the serving discipline. The hedge delay and admission
// budget both self-derive from live percentiles once enough shard
// requests have been observed; before that, conservative defaults
// apply.
const (
	// controlWarmup is how many shard requests (hedge delay) or
	// per-query costs (admission) must be observed before the live p99
	// replaces the default.
	controlWarmup = 64
	// defaultHedgeDelay applies until the latency summary warms up.
	defaultHedgeDelay = 25 * time.Millisecond
	// hedgeDelayMin/Max clamp the p99-derived delay: below the floor a
	// healthy cluster would hedge constantly (pure waste — the answer is
	// deterministic either way), above the ceiling a hedge no longer
	// rescues the tail.
	hedgeDelayMin = time.Millisecond
	hedgeDelayMax = time.Second
	// admissionFloor mirrors topk-serve's calibrated-budget floor: tiny
	// indexes would otherwise derive budgets that abort routine queries.
	admissionFloor = 16
	// coordGrace is how long past the request deadline the coordinator
	// keeps waiting for replicas to deliver their (degraded or typed)
	// lifecycle results before declaring a shard's replica group
	// unavailable at the transport layer.
	coordGrace = 2 * time.Second
)

// Config describes one cluster: a partitioned snapshot's geometry plus
// the coordinator's request-lifecycle defaults.
type Config struct {
	// Problem is the registry name of the problem served.
	Problem string
	// Shards is the snapshot's partition count; every query fans out to
	// one replica of each shard.
	Shards int
	// Replication is R, the owners per shard. Clamped to the node count.
	Replication int
	// HedgeDelay pins the hedge delay; 0 derives it from the live p99 of
	// shard-request latency (clamped to [1ms, 1s], 25ms until warm).
	HedgeDelay time.Duration
	// Deadline is the default per-request wall-clock deadline (0 none).
	Deadline time.Duration
	// BudgetIOs is the default per-query per-shard I/O budget: 0 means
	// unbudgeted, > 0 a fixed cap, and -1 turns on admission control —
	// the budget tracks 2× the live p99 of observed per-query shard
	// cost, exactly the calibration rule topk-serve applies at boot but
	// re-derived continuously from real traffic.
	BudgetIOs int64
	// DegradeToMax arms the top-1 fallback on lifecycle aborts.
	DegradeToMax bool
}

// QueryOptions are one request's lifecycle overrides, mirroring the
// /query body: > 0 overrides the default, < 0 forces the limit off,
// 0 keeps the coordinator default. DeadlineAt, when set, is an absolute
// deadline that wins over DeadlineMS (the conformance suite uses it to
// pin already-expired deadlines deterministically).
type QueryOptions struct {
	BudgetIOs  int64
	DeadlineMS int64
	DeadlineAt time.Time
	Degrade    *bool
}

// Coordinator fans query batches out to replica groups and merges the
// per-shard answers under the same rules as a single-process Sharded
// index. Safe for concurrent use.
type Coordinator struct {
	cfg    Config
	byID   map[string]Replica
	owners [][]string // shard -> replica IDs, preference order
	met    *obs.ClusterMetrics
	rr     atomic.Uint64 // rotates the preferred replica per shard request
}

// New builds a coordinator over the given replicas. Shard ownership is
// rendezvous-hashed over the replica IDs at the configured replication
// factor; every participant computing ownership from the same ID list
// agrees on it.
func New(cfg Config, replicas []Replica) (*Coordinator, error) {
	if cfg.Shards < 1 {
		return nil, fmt.Errorf("cluster: need at least 1 shard, got %d", cfg.Shards)
	}
	if len(replicas) == 0 {
		return nil, fmt.Errorf("cluster: need at least one replica")
	}
	if cfg.Replication < 1 {
		cfg.Replication = 1
	}
	if cfg.Replication > len(replicas) {
		cfg.Replication = len(replicas)
	}
	c := &Coordinator{cfg: cfg, byID: make(map[string]Replica, len(replicas))}
	ids := make([]string, len(replicas))
	for i, r := range replicas {
		id := r.ID()
		if _, dup := c.byID[id]; dup {
			return nil, fmt.Errorf("cluster: duplicate replica ID %q", id)
		}
		c.byID[id] = r
		ids[i] = id
	}
	c.owners = make([][]string, cfg.Shards)
	for s := range c.owners {
		c.owners[s] = shard.Owners(s, ids, cfg.Replication)
	}
	c.met = obs.NewClusterMetrics(obs.NewRegistry())
	c.met.Registry().NewGauge("topk_cluster_shards", "Shards in the served partition.").Set(int64(cfg.Shards))
	c.met.Registry().NewGauge("topk_cluster_replication", "Replication factor R.").Set(int64(cfg.Replication))
	c.met.Registry().NewGauge("topk_cluster_nodes", "Replica nodes configured.").Set(int64(len(replicas)))
	return c, nil
}

// Config returns the coordinator's configuration (replication clamped).
func (c *Coordinator) Config() Config { return c.cfg }

// Metrics returns the coordinator's metric bundle.
func (c *Coordinator) Metrics() *obs.ClusterMetrics { return c.met }

// Owners returns the replica IDs owning the given shard, preference
// order first.
func (c *Coordinator) Owners(s int) []string {
	return append([]string(nil), c.owners[s]...)
}

// hedgeDelay is the current delay before a shard request launches its
// second replica: the pinned value if configured, else the live p99 of
// shard-request latency — by construction about 1% of healthy requests
// hedge, which is the standard tail-tolerance discipline.
func (c *Coordinator) hedgeDelay() time.Duration {
	d := c.cfg.HedgeDelay
	if d <= 0 {
		d = defaultHedgeDelay
		if c.met.ShardLatency.Count() >= controlWarmup {
			d = time.Duration(c.met.ShardLatency.Quantile(0.99))
			if d < hedgeDelayMin {
				d = hedgeDelayMin
			}
			if d > hedgeDelayMax {
				d = hedgeDelayMax
			}
		}
	}
	c.met.HedgeDelayUS.Set(d.Microseconds())
	return d
}

// admissionBudget derives the per-query per-shard I/O budget when
// admission control is on (Config.BudgetIOs == -1): twice the live p99
// of observed per-query shard cost, floored like topk-serve's boot
// calibration. Until the cost summary warms up, queries run unbudgeted.
func (c *Coordinator) admissionBudget() int64 {
	if c.met.ShardIOs.Count() < controlWarmup {
		c.met.AdmissionBudget.Set(0)
		return 0
	}
	b := 2 * c.met.ShardIOs.Quantile(0.99)
	if b < admissionFloor {
		b = admissionFloor
	}
	c.met.AdmissionBudget.Set(b)
	return b
}

// resolveBudget applies a request's override to the default budget.
func (c *Coordinator) resolveBudget(opt QueryOptions) int64 {
	switch {
	case opt.BudgetIOs > 0:
		return opt.BudgetIOs
	case opt.BudgetIOs < 0:
		return 0
	case c.cfg.BudgetIOs < 0:
		return c.admissionBudget()
	default:
		return c.cfg.BudgetIOs
	}
}

// resolveDeadline applies a request's override to the default deadline,
// returning the absolute instant (zero = none).
func (c *Coordinator) resolveDeadline(opt QueryOptions) time.Time {
	if !opt.DeadlineAt.IsZero() {
		return opt.DeadlineAt
	}
	d := c.cfg.Deadline
	if opt.DeadlineMS > 0 {
		d = time.Duration(opt.DeadlineMS) * time.Millisecond
	} else if opt.DeadlineMS < 0 {
		d = 0
	}
	if d <= 0 {
		return time.Time{}
	}
	return time.Now().Add(d)
}

// remainingMS renders an absolute deadline as the wire's relative form
// at dispatch time: 0 none, > 0 milliseconds left (sub-millisecond
// remainders round up so "almost no time" is not mistaken for "no
// deadline"), < 0 already expired.
func remainingMS(dl time.Time) int64 {
	if dl.IsZero() {
		return 0
	}
	rem := time.Until(dl)
	if rem <= 0 {
		return -1
	}
	ms := rem.Milliseconds()
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Query answers one batch of wire-shaped queries across the cluster:
// fan out to one replica per shard (hedging per shard as needed), then
// merge per query under the single-process Sharded rules — full Lemma 2
// merge when every shard is OK, exact top-1 prefix when any shard
// degraded, typed refusal when a shard aborted without the fallback,
// and OutcomeUnavailable when a shard's whole replica group failed at
// the transport layer.
func (c *Coordinator) Query(ctx context.Context, queries []json.RawMessage, k int, opt QueryOptions) ([]ShardResult, error) {
	if len(queries) == 0 {
		return nil, fmt.Errorf("cluster: empty query batch")
	}
	if k < 1 {
		return nil, fmt.Errorf("cluster: need k >= 1, got %d", k)
	}
	budget := c.resolveBudget(opt)
	dl := c.resolveDeadline(opt)
	degrade := c.cfg.DegradeToMax
	if opt.Degrade != nil {
		degrade = *opt.Degrade
	}

	// The coordinator waits past the query deadline by a grace period:
	// replicas whose engines trip the deadline still owe a (degraded or
	// typed) result, and only transport silence beyond the grace makes a
	// shard unavailable. An already-expired deadline anchors the grace at
	// now — the replicas' deterministic aborts still deserve the wire
	// round-trip.
	wctx := ctx
	if !dl.IsZero() {
		base := dl
		if now := time.Now(); base.Before(now) {
			base = now
		}
		var cancel context.CancelFunc
		wctx, cancel = context.WithDeadline(ctx, base.Add(coordGrace))
		defer cancel()
	}

	per := make([]ShardResponse, c.cfg.Shards)
	errs := make([]error, c.cfg.Shards)
	var wg sync.WaitGroup
	for s := 0; s < c.cfg.Shards; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			req := ShardRequest{
				Shard: s, Queries: queries, K: k,
				BudgetIOs: budget, DeadlineMS: remainingMS(dl), Degrade: degrade,
			}
			per[s], errs[s] = c.queryShard(wctx, req)
		}(s)
	}
	wg.Wait()
	return c.merge(queries, k, per, errs), nil
}

// queryShard runs one shard's request against its replica group with
// hedging: the preferred replica (rotated per request) goes first; if
// it has not answered within the hedge delay, the next owner races it
// and the first success wins, the loser cancelled through ctx. A
// transport error fails over to the next owner immediately. Lifecycle
// aborts are not errors — they ride inside the response.
func (c *Coordinator) queryShard(ctx context.Context, req ShardRequest) (ShardResponse, error) {
	owners := c.owners[req.Shard]
	start := int(c.rr.Add(1)-1) % len(owners)
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type attempt struct {
		resp ShardResponse
		err  error
		idx  int
	}
	ch := make(chan attempt, len(owners))
	launched := 0
	launch := func() {
		idx := launched
		id := owners[(start+idx)%len(owners)]
		rep := c.byID[id]
		launched++
		c.met.ReplicaRequest(id)
		go func() {
			t0 := time.Now()
			resp, err := rep.QueryShard(cctx, req)
			if err == nil {
				if len(resp.Results) != len(req.Queries) {
					err = fmt.Errorf("node %s: %d results for %d queries", id, len(resp.Results), len(req.Queries))
				} else {
					c.met.ShardLatency.Observe(time.Since(t0).Nanoseconds())
					for _, r := range resp.Results {
						c.met.ShardIOs.Observe(r.IOs)
					}
				}
			}
			if err != nil && cctx.Err() == nil {
				c.met.ReplicaError(id)
			}
			ch <- attempt{resp, err, idx}
		}()
	}
	launch()

	hedge := time.NewTimer(c.hedgeDelay())
	defer hedge.Stop()
	pending := 1
	var lastErr error
	for {
		select {
		case a := <-ch:
			pending--
			if a.err == nil {
				if a.idx > 0 {
					c.met.HedgeWins.Inc()
				}
				return a.resp, nil
			}
			lastErr = a.err
			if launched < len(owners) {
				// Immediate failover: a replica that answered with a
				// transport error costs no hedge delay.
				launch()
				pending++
			} else if pending == 0 {
				return ShardResponse{}, fmt.Errorf("shard %d: %w: %v", req.Shard, topk.ErrReplicaUnavailable, lastErr)
			}
		case <-hedge.C:
			if launched < len(owners) {
				c.met.Hedged.Inc()
				launch()
				pending++
			}
		case <-cctx.Done():
			if lastErr == nil {
				lastErr = cctx.Err()
			}
			return ShardResponse{}, fmt.Errorf("shard %d: %w: %v", req.Shard, topk.ErrReplicaUnavailable, lastErr)
		}
	}
}

// merge combines per-shard responses into per-query results under the
// same rules as Sharded.QueryBatchCtx, with one cluster-only addition:
// a shard whose whole replica group failed makes its queries
// OutcomeUnavailable — a typed refusal, never a silently partial
// answer.
func (c *Coordinator) merge(queries []json.RawMessage, k int, per []ShardResponse, errs []error) []ShardResult {
	var lost error
	for _, err := range errs {
		if err != nil {
			lost = err
			break
		}
	}
	weightOf := func(it WireItem) float64 { return it.Weight }
	out := make([]ShardResult, len(queries))
	lists := make([][]WireItem, 0, len(per))
	for qi := range queries {
		r := &out[qi]
		r.Items = []WireItem{}
		if lost != nil {
			c.met.Unavailable.Inc()
			r.Outcome = topk.OutcomeUnavailable.String()
			r.Error = lost.Error()
			continue
		}
		worst := topk.OutcomeOK
		lists = lists[:0]
		for si := range per {
			sr := per[si].Results[qi]
			lists = append(lists, sr.Items)
			r.Reads += sr.Reads
			r.Writes += sr.Writes
			r.Hits += sr.Hits
			r.IOs += sr.IOs
			if o, ok := topk.ParseOutcome(sr.Outcome); ok && o != topk.OutcomeOK && o > worst {
				worst = o
			}
			if r.Error == "" {
				r.Error = sr.Error
			}
		}
		items := shard.MergeDesc(lists, k, weightOf)
		switch {
		case worst == topk.OutcomeDegraded:
			// Every aborted shard fell back to its exact local top-1, so
			// the merged head is the exact global maximum.
			if len(items) > 1 {
				items = items[:1]
			}
			c.met.Degraded.Inc()
		case worst != topk.OutcomeOK:
			items = nil
		}
		r.Items = append(r.Items, items...)
		r.Outcome = worst.String()
	}
	return out
}

// Ready reports whether every shard has at least one owner currently
// serving it, by asking each replica for its Info. It is the
// coordinator's bootstrap gate: nodes fetch shards asynchronously, and
// a cluster is queryable once coverage is complete.
func (c *Coordinator) Ready(ctx context.Context) error {
	serving := make(map[string]map[int]bool, len(c.byID))
	var firstErr error
	for id, rep := range c.byID {
		info, err := rep.Info(ctx)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if c.cfg.Problem != "" && info.Problem != c.cfg.Problem {
			return fmt.Errorf("cluster: node %s serves problem %q, cluster is %q", id, info.Problem, c.cfg.Problem)
		}
		set := make(map[int]bool, len(info.Shards))
		for _, s := range info.Shards {
			set[s] = true
		}
		serving[id] = set
	}
	for s := 0; s < c.cfg.Shards; s++ {
		covered := false
		for _, id := range c.owners[s] {
			if serving[id][s] {
				covered = true
				break
			}
		}
		if !covered {
			if firstErr != nil {
				return fmt.Errorf("cluster: shard %d has no live owner (owners %v): %w", s, c.owners[s], firstErr)
			}
			return fmt.Errorf("cluster: shard %d has no live owner yet (owners %v)", s, c.owners[s])
		}
	}
	return nil
}
