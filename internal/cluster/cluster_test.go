package cluster_test

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"topk"
	"topk/internal/cluster"
)

const (
	testN      = 2000
	testShards = 3
	testSeed   = 7
	testNQ     = 12
	testK      = 5
)

// testNodeIDs are the pinned cluster node names; under the pinned
// rendezvous hash (see internal/shard ring tests) "n1" owns shards
// {0,1,2} at R=2 and is the preferred owner of shards 1 — the tests
// below rely only on properties re-derived via Owners, not on the
// literals.
var testNodeIDs = []string{"n1", "n2", "n3"}

// buildSnapshot builds spec's sharded index, snapshots it, and returns
// the snapshot dir plus a single-process reference restored from the
// very same files the cluster nodes will load.
func buildSnapshot(t *testing.T, spec topk.ProblemSpec) (string, topk.Served) {
	t.Helper()
	dir := t.TempDir()
	ix, err := spec.BuildSharded(testN, testShards, testSeed)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Snapshot(dir); err != nil {
		t.Fatal(err)
	}
	ref, err := topk.LoadSnapshot(dir)
	if err != nil {
		t.Fatal(err)
	}
	return dir, ref
}

// buildReplicas restores each node's owned shards from dir, exactly as
// topk-node bootstrap does.
func buildReplicas(t *testing.T, spec topk.ProblemSpec, dir string, r int) []cluster.Replica {
	t.Helper()
	rc := cluster.RemoteConfig{Problem: spec.Name, Shards: testShards, Replication: r, Nodes: testNodeIDs}
	reps := make([]cluster.Replica, len(testNodeIDs))
	for i, id := range testNodeIDs {
		shards, err := cluster.LoadShards(dir, rc.OwnedShards(id))
		if err != nil {
			t.Fatal(err)
		}
		reps[i] = cluster.NewNode(id, spec.Name, shards)
	}
	return reps
}

func newCoordinator(t *testing.T, spec topk.ProblemSpec, reps []cluster.Replica, mut func(*cluster.Config)) *cluster.Coordinator {
	t.Helper()
	cfg := cluster.Config{Problem: spec.Name, Shards: testShards, Replication: 2, HedgeDelay: time.Second}
	if mut != nil {
		mut(&cfg)
	}
	co, err := cluster.New(cfg, reps)
	if err != nil {
		t.Fatal(err)
	}
	return co
}

// renderRef renders a single-process QueryBatchCtx result in the wire
// shape, mirroring topk-serve's /query rendering — the cluster answer
// must be byte-identical to this.
func renderRef(res []topk.BatchResult[topk.ServedItem]) []cluster.ShardResult {
	out := make([]cluster.ShardResult, len(res))
	for i, r := range res {
		out[i] = cluster.ShardResult{
			Items: make([]cluster.WireItem, 0, len(r.Items)),
			Reads: r.Stats.Reads, Writes: r.Stats.Writes, Hits: r.Stats.Hits, IOs: r.Stats.IOs(),
			Outcome: r.Outcome.String(),
		}
		if r.Err != nil {
			out[i].Error = r.Err.Error()
		}
		for _, it := range r.Items {
			out[i].Items = append(out[i].Items, cluster.WireItem{Weight: it.Weight, Label: it.Label})
		}
	}
	return out
}

func decodeAll(t *testing.T, ref topk.Served, queries []json.RawMessage) []any {
	t.Helper()
	qs := make([]any, len(queries))
	for i, raw := range queries {
		q, err := ref.DecodeQuery(raw)
		if err != nil {
			t.Fatal(err)
		}
		qs[i] = q
	}
	return qs
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestClusterConformance: for every registered problem, a 3-node R=2
// cluster restored from a partitioned snapshot must answer the pinned
// wire workload byte-identically (items, stats, outcomes) to a
// single-process index restored from the same snapshot. This is the
// partition-exactness invariant carried across the process boundary.
func TestClusterConformance(t *testing.T) {
	for _, spec := range topk.RegisteredProblems() {
		spec := spec
		t.Run(spec.Name, func(t *testing.T) {
			dir, ref := buildSnapshot(t, spec)
			co := newCoordinator(t, spec, buildReplicas(t, spec, dir, 2), nil)
			queries := spec.WireQueries(testNQ, testSeed+1)

			got, err := co.Query(context.Background(), queries, testK, cluster.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			want := renderRef(ref.QueryBatchCtx(topk.QueryCtx{}, decodeAll(t, ref, queries), testK, 0))
			if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
				t.Fatalf("cluster answer differs from single-process reference:\n got %s\nwant %s", g, w)
			}
		})
	}
}

// TestClusterDegradation: the lifecycle conformance rows for the
// cluster tier. With the deadline already expired on every replica the
// coordinator must serve the provably-correct top-1 fallback
// (byte-identical to the single-process degraded answer, whose head is
// the oracle maximum); without the fallback armed it must refuse typed;
// and the Degraded counter must account for every degraded query.
func TestClusterDegradation(t *testing.T) {
	spec, ok := topk.ProblemByName("interval")
	if !ok {
		t.Fatal("interval not registered")
	}
	dir, ref := buildSnapshot(t, spec)
	queries := spec.WireQueries(testNQ, testSeed+2)
	qs := decodeAll(t, ref, queries)
	degrade := true
	past := time.Now().Add(-time.Hour)

	rows := []struct {
		name    string
		opt     cluster.QueryOptions
		refCtx  topk.QueryCtx
		outcome string
	}{
		{
			name:    "all-replicas-past-deadline-degrade-to-max",
			opt:     cluster.QueryOptions{DeadlineAt: past, Degrade: &degrade},
			refCtx:  topk.QueryCtx{Deadline: past, DegradeToMax: true},
			outcome: "degraded",
		},
		{
			name:    "all-replicas-past-deadline-typed-refusal",
			opt:     cluster.QueryOptions{DeadlineAt: past},
			refCtx:  topk.QueryCtx{Deadline: past},
			outcome: "deadline_exceeded",
		},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			co := newCoordinator(t, spec, buildReplicas(t, spec, dir, 2), nil)
			got, err := co.Query(context.Background(), queries, testK, row.opt)
			if err != nil {
				t.Fatal(err)
			}
			want := renderRef(ref.QueryBatchCtx(row.refCtx, qs, testK, 0))
			if g, w := mustJSON(t, got), mustJSON(t, want); g != w {
				t.Fatalf("degraded cluster answer differs from reference:\n got %s\nwant %s", g, w)
			}
			for i, q := range got {
				if q.Outcome != row.outcome {
					t.Fatalf("q%d: outcome %q, want %q", i, q.Outcome, row.outcome)
				}
				switch row.outcome {
				case "degraded":
					// The degraded head must be the exact global maximum.
					oracle := ref.Oracle(qs[i])
					if len(oracle) == 0 {
						if len(q.Items) != 0 {
							t.Fatalf("q%d: degraded items %v for an empty oracle", i, q.Items)
						}
					} else if len(q.Items) != 1 || q.Items[0].Weight != oracle[0].Weight {
						t.Fatalf("q%d: degraded head %v, oracle max %v", i, q.Items, oracle[0].Weight)
					}
				case "deadline_exceeded":
					if len(q.Items) != 0 {
						t.Fatalf("q%d: typed refusal returned %d items", i, len(q.Items))
					}
					if q.Error == "" {
						t.Fatalf("q%d: typed refusal with no error string", i)
					}
				}
			}
			if row.outcome == "degraded" {
				if d := co.Metrics().Degraded.Value(); d != int64(len(queries)) {
					t.Fatalf("Degraded counter = %d, want %d", d, len(queries))
				}
			}
		})
	}
}

// stallReplica blocks every shard request until the coordinator cancels
// it — a SIGSTOPped or wedged node, as seen from the transport.
type stallReplica struct {
	cluster.Replica
}

func (s stallReplica) QueryShard(ctx context.Context, req cluster.ShardRequest) (cluster.ShardResponse, error) {
	<-ctx.Done()
	return cluster.ShardResponse{}, ctx.Err()
}

// errReplica fails every shard request instantly — a dead port.
type errReplica struct {
	cluster.Replica
}

func (e errReplica) QueryShard(context.Context, cluster.ShardRequest) (cluster.ShardResponse, error) {
	return cluster.ShardResponse{}, errors.New("connection refused (test)")
}

// wrapReplica swaps node id's replica for the given wrapper.
func wrapReplica(reps []cluster.Replica, id string, wrap func(cluster.Replica) cluster.Replica) []cluster.Replica {
	out := make([]cluster.Replica, len(reps))
	for i, r := range reps {
		if r.ID() == id {
			out[i] = wrap(r)
		} else {
			out[i] = r
		}
	}
	return out
}

// TestClusterHedgedReads: with one replica wedged (never answers until
// cancelled) and a 1ms hedge delay, every query must still produce the
// exact single-process answer — replica interchangeability makes the
// hedge's answer the answer — and the hedge counters must show the
// rescues. This is the "one replica alive per shard → full answer"
// conformance row.
func TestClusterHedgedReads(t *testing.T) {
	spec, ok := topk.ProblemByName("interval")
	if !ok {
		t.Fatal("interval not registered")
	}
	dir, ref := buildSnapshot(t, spec)
	queries := spec.WireQueries(testNQ, testSeed+3)
	want := mustJSON(t, renderRef(ref.QueryBatchCtx(topk.QueryCtx{}, decodeAll(t, ref, queries), testK, 0)))

	reps := buildReplicas(t, spec, dir, 2)
	// Wedge the preferred owner of shard 0 so some dispatches stall.
	co := newCoordinator(t, spec, reps, func(c *cluster.Config) { c.HedgeDelay = time.Millisecond })
	stalled := co.Owners(0)[0]
	co = newCoordinator(t, spec, wrapReplica(reps, stalled, func(r cluster.Replica) cluster.Replica { return stallReplica{r} }),
		func(c *cluster.Config) { c.HedgeDelay = time.Millisecond })

	// The preferred replica rotates per shard request, so drive enough
	// rounds that the wedged node is preferred at least once.
	for round := 0; round < 16; round++ {
		got, err := co.Query(context.Background(), queries, testK, cluster.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if g := mustJSON(t, got); g != want {
			t.Fatalf("round %d: hedged answer differs from reference:\n got %s\nwant %s", round, g, want)
		}
		if co.Metrics().Hedged.Value() > 0 && co.Metrics().HedgeWins.Value() > 0 {
			return
		}
	}
	t.Fatalf("wedged node %s never forced a hedge in 16 rounds (hedged=%d wins=%d)",
		stalled, co.Metrics().Hedged.Value(), co.Metrics().HedgeWins.Value())
}

// TestClusterFailover: a replica that errors instantly must cost no
// hedge delay — the coordinator fails over to the next owner and still
// returns the exact answer, counting the error against the node.
func TestClusterFailover(t *testing.T) {
	spec, ok := topk.ProblemByName("range")
	if !ok {
		t.Fatal("range not registered")
	}
	dir, ref := buildSnapshot(t, spec)
	queries := spec.WireQueries(testNQ, testSeed+4)
	want := mustJSON(t, renderRef(ref.QueryBatchCtx(topk.QueryCtx{}, decodeAll(t, ref, queries), testK, 0)))

	reps := buildReplicas(t, spec, dir, 2)
	co := newCoordinator(t, spec, reps, nil)
	dead := co.Owners(0)[0]
	co = newCoordinator(t, spec, wrapReplica(reps, dead, func(r cluster.Replica) cluster.Replica { return errReplica{r} }), nil)

	for round := 0; round < 4; round++ {
		got, err := co.Query(context.Background(), queries, testK, cluster.QueryOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if g := mustJSON(t, got); g != want {
			t.Fatalf("round %d: failover answer differs from reference:\n got %s\nwant %s", round, g, want)
		}
	}
	var metrics strings.Builder
	co.Metrics().Registry().WritePrometheus(&metrics)
	if !strings.Contains(metrics.String(), fmt.Sprintf("topk_replica_errors_total{node=%q}", dead)) {
		t.Fatalf("no error counted against dead node %s:\n%s", dead, metrics.String())
	}
}

// TestClusterUnavailable: when every owner of a shard is dead the
// coordinator must refuse typed — OutcomeUnavailable with an error and
// empty items, never a silently partial merge — and count each query.
func TestClusterUnavailable(t *testing.T) {
	spec, ok := topk.ProblemByName("interval")
	if !ok {
		t.Fatal("interval not registered")
	}
	dir, _ := buildSnapshot(t, spec)
	reps := buildReplicas(t, spec, dir, 2)
	for i, r := range reps {
		reps[i] = errReplica{r}
	}
	co := newCoordinator(t, spec, reps, nil)
	queries := spec.WireQueries(4, testSeed+5)
	got, err := co.Query(context.Background(), queries, testK, cluster.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range got {
		if q.Outcome != topk.OutcomeUnavailable.String() {
			t.Fatalf("q%d: outcome %q, want unavailable", i, q.Outcome)
		}
		if len(q.Items) != 0 {
			t.Fatalf("q%d: unavailable query returned %d items", i, len(q.Items))
		}
		if !strings.Contains(q.Error, topk.ErrReplicaUnavailable.Error()) {
			t.Fatalf("q%d: error %q does not mention replica unavailability", i, q.Error)
		}
	}
	if u := co.Metrics().Unavailable.Value(); u != int64(len(queries)) {
		t.Fatalf("Unavailable counter = %d, want %d", u, len(queries))
	}
}

// TestClusterValidation: geometry and request validation errors.
func TestClusterValidation(t *testing.T) {
	spec, _ := topk.ProblemByName("interval")
	dir, _ := buildSnapshot(t, spec)
	reps := buildReplicas(t, spec, dir, 2)

	if _, err := cluster.New(cluster.Config{Shards: 0}, reps); err == nil {
		t.Fatal("New accepted 0 shards")
	}
	if _, err := cluster.New(cluster.Config{Shards: 3}, nil); err == nil {
		t.Fatal("New accepted an empty replica set")
	}
	if _, err := cluster.New(cluster.Config{Shards: 3}, []cluster.Replica{reps[0], reps[0]}); err == nil {
		t.Fatal("New accepted duplicate replica IDs")
	}
	co, err := cluster.New(cluster.Config{Shards: testShards, Replication: 99}, reps)
	if err != nil {
		t.Fatal(err)
	}
	if got := co.Config().Replication; got != len(reps) {
		t.Fatalf("replication clamped to %d, want %d", got, len(reps))
	}
	if _, err := co.Query(context.Background(), nil, testK, cluster.QueryOptions{}); err == nil {
		t.Fatal("Query accepted an empty batch")
	}
	if _, err := co.Query(context.Background(), spec.WireQueries(1, 1), 0, cluster.QueryOptions{}); err == nil {
		t.Fatal("Query accepted k=0")
	}
}

// TestNodeQueryShardValidation: nodes reject foreign shards and
// malformed requests rather than answering wrongly.
func TestNodeQueryShardValidation(t *testing.T) {
	spec, _ := topk.ProblemByName("interval")
	dir, _ := buildSnapshot(t, spec)
	shards, err := cluster.LoadShards(dir, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	n := cluster.NewNode("solo", spec.Name, shards)
	queries := spec.WireQueries(2, testSeed)

	if _, err := n.QueryShard(context.Background(), cluster.ShardRequest{Shard: 0, Queries: queries, K: 3}); err == nil {
		t.Fatal("node answered a shard it does not serve")
	}
	if _, err := n.QueryShard(context.Background(), cluster.ShardRequest{Shard: 1, K: 3}); err == nil {
		t.Fatal("node answered an empty batch")
	}
	if _, err := n.QueryShard(context.Background(), cluster.ShardRequest{Shard: 1, Queries: queries, K: 0}); err == nil {
		t.Fatal("node answered k=0")
	}
	if _, err := n.QueryShard(context.Background(), cluster.ShardRequest{Shard: 1, Queries: []json.RawMessage{json.RawMessage(`{"bad"`)}, K: 3}); err == nil {
		t.Fatal("node answered an undecodable query")
	}
	resp, err := n.QueryShard(context.Background(), cluster.ShardRequest{Shard: 1, Queries: queries, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(queries) {
		t.Fatalf("%d results for %d queries", len(resp.Results), len(queries))
	}
	info, err := n.Info(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if info.Problem != spec.Name || len(info.Shards) != 1 || info.Shards[0] != 1 {
		t.Fatalf("info = %+v", info)
	}
}
