package cascade

import (
	"sort"
	"testing"

	"topk/internal/wrand"
)

// buildRandomTree builds a random catalog tree of the given depth.
func buildRandomTree(g *wrand.RNG, depth, maxKeys int) *Input {
	if depth == 0 {
		return nil
	}
	n := g.IntN(maxKeys + 1)
	keys := make([]float64, n)
	for i := range keys {
		keys[i] = g.Float64() * 100
	}
	sort.Float64s(keys)
	return &Input{
		Keys:  keys,
		Left:  buildRandomTree(g, depth-1, maxKeys),
		Right: buildRandomTree(g, depth-1, maxKeys),
	}
}

// oraclePred is the plain binary search the cascade must agree with.
func oraclePred(keys []float64, x float64) int {
	return sort.Search(len(keys), func(i int) bool { return keys[i] > x }) - 1
}

// checkAllPaths walks every root-to-leaf path comparing cursor answers to
// plain binary search.
func checkAllPaths(t *testing.T, in *Input, nd *Node, c Cursor, x float64) {
	t.Helper()
	if in == nil {
		return
	}
	if !c.Valid() {
		t.Fatalf("cursor invalid at a real node (x=%v)", x)
	}
	want := oraclePred(in.Keys, x)
	if got := c.OwnPred(); got != want {
		t.Fatalf("x=%v: OwnPred=%d, want %d (keys %v)", x, got, want, in.Keys)
	}
	checkAllPaths(t, in.Left, nd.left, c.Left(), x)
	checkAllPaths(t, in.Right, nd.right, c.Right(), x)
}

func TestCascadeAgainstBinarySearch(t *testing.T) {
	g := wrand.New(1)
	for trial := 0; trial < 30; trial++ {
		in := buildRandomTree(g, 5, 12)
		if in == nil {
			continue
		}
		nd := Build(in)
		for probe := 0; probe < 60; probe++ {
			x := g.Float64()*120 - 10
			checkAllPaths(t, in, nd, nd.Search(x), x)
		}
		// Probe exactly at every root key (boundary semantics).
		for _, k := range in.Keys {
			checkAllPaths(t, in, nd, nd.Search(k), k)
		}
	}
}

func TestCascadeDeepPath(t *testing.T) {
	// A long path (the segment-tree use case): depth 16, verifying both
	// correctness and that catalogs stay linear in total size.
	g := wrand.New(2)
	var build func(d int) *Input
	build = func(d int) *Input {
		if d == 0 {
			return nil
		}
		keys := g.UniqueFloats(8, 100)
		sort.Float64s(keys)
		return &Input{Keys: keys, Left: build(d - 1), Right: build(d - 1)}
	}
	in := build(14)
	nd := Build(in)

	totalOwn, totalCat := 0, 0
	var count func(in *Input, nd *Node)
	count = func(in *Input, nd *Node) {
		if in == nil {
			return
		}
		totalOwn += len(in.Keys)
		totalCat += nd.CatalogLen()
		count(in.Left, nd.left)
		count(in.Right, nd.right)
	}
	count(in, nd)
	if totalCat > 4*totalOwn {
		t.Fatalf("catalog blowup: %d augmented vs %d own entries (> 4x)", totalCat, totalOwn)
	}

	for probe := 0; probe < 100; probe++ {
		x := g.Float64() * 110
		c := nd.Search(x)
		cur, curIn := nd, in
		for cur != nil {
			want := oraclePred(curIn.Keys, x)
			if got := c.OwnPred(); got != want {
				t.Fatalf("x=%v: OwnPred=%d, want %d", x, got, want)
			}
			if probe%2 == 0 {
				c, cur, curIn = c.Left(), cur.left, curIn.Left
			} else {
				c, cur, curIn = c.Right(), cur.right, curIn.Right
			}
		}
	}
}

func TestCascadeEmptyAndEdge(t *testing.T) {
	if Build(nil) != nil {
		t.Fatal("Build(nil) != nil")
	}
	// Node with no keys of its own but children with keys.
	in := &Input{
		Keys:  nil,
		Left:  &Input{Keys: []float64{1, 3}},
		Right: &Input{Keys: []float64{2, 4}},
	}
	nd := Build(in)
	c := nd.Search(3.5)
	if got := c.OwnPred(); got != -1 {
		t.Fatalf("empty own keys: OwnPred=%d, want -1", got)
	}
	if got := c.Left().OwnPred(); got != 1 {
		t.Fatalf("left OwnPred=%d, want 1 (key 3)", got)
	}
	if got := c.Right().OwnPred(); got != 0 {
		t.Fatalf("right OwnPred=%d, want 0 (key 2)", got)
	}
	// Below all keys.
	c = nd.Search(0.5)
	if c.OwnPred() != -1 || c.Left().OwnPred() != -1 || c.Right().OwnPred() != -1 {
		t.Fatal("below-all query found a predecessor")
	}
	// Descending past a leaf yields an invalid cursor, not a panic.
	leaf := Build(&Input{Keys: []float64{1}})
	if leaf.Search(2).Left().Valid() {
		t.Fatal("descend past leaf returned a valid cursor")
	}
}

func TestCascadePanicsOnUnsorted(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unsorted keys accepted")
		}
	}()
	Build(&Input{Keys: []float64{3, 1}})
}

func TestCascadeDuplicateKeys(t *testing.T) {
	in := &Input{
		Keys: []float64{2, 2, 2, 5},
		Left: &Input{Keys: []float64{2, 2}},
	}
	nd := Build(in)
	c := nd.Search(2)
	if got := c.OwnPred(); got != 2 {
		t.Fatalf("OwnPred with duplicates = %d, want 2 (last of the 2s)", got)
	}
	if got := c.Left().OwnPred(); got != 1 {
		t.Fatalf("left OwnPred = %d, want 1", got)
	}
}
