// Package cascade implements fractional cascading (Chazelle & Guibas),
// the technique the paper invokes twice (Sections 5.2 and 5.4) to shave a
// log factor off iterated predecessor searches: when a query performs the
// same predecessor search in sorted catalogs along a root-to-leaf path,
// cascading bridges reduce every search after the first to O(1).
//
// Each node's catalog is augmented with every second entry of its
// children's augmented catalogs (sampling always keeps a child's minimum,
// so position transfer never loses the predecessor). A query binary
// searches once at the root and then follows bridge pointers downward,
// advancing at most a constant number of entries per level.
package cascade

import "sort"

// Input describes the catalog tree to build over: one sorted key slice per
// node, and up to two children.
type Input struct {
	// Keys must be sorted ascending (duplicates allowed).
	Keys        []float64
	Left, Right *Input
}

// Node is one node of the built cascading structure.
type Node struct {
	own         []float64
	cat         []entry
	left, right *Node
}

type entry struct {
	key      float64
	ownPred  int32 // index of the last own key ≤ key; -1 if none
	leftPos  int32 // index of the last left-child cat entry with key ≤ key
	rightPos int32
}

// Build constructs the cascading structure. The input tree is not
// modified; nil input yields nil.
func Build(in *Input) *Node {
	if in == nil {
		return nil
	}
	if !sort.Float64sAreSorted(in.Keys) {
		panic("cascade: node keys not sorted")
	}
	nd := &Node{
		own:   append([]float64(nil), in.Keys...),
		left:  Build(in.Left),
		right: Build(in.Right),
	}
	nd.cat = mergeCatalog(nd.own, sample(nd.left), sample(nd.right), nd.left, nd.right)
	return nd
}

// sample returns every second catalog key of the child, starting at index
// 0 (so the child's minimum is always present in the parent).
func sample(child *Node) []float64 {
	if child == nil {
		return nil
	}
	out := make([]float64, 0, (len(child.cat)+1)/2)
	for i := 0; i < len(child.cat); i += 2 {
		out = append(out, child.cat[i].key)
	}
	return out
}

// mergeCatalog builds the augmented catalog and its bridge pointers.
func mergeCatalog(own, ls, rs []float64, left, right *Node) []entry {
	merged := make([]float64, 0, len(own)+len(ls)+len(rs))
	merged = append(merged, own...)
	merged = append(merged, ls...)
	merged = append(merged, rs...)
	sort.Float64s(merged)

	cat := make([]entry, len(merged))
	oi, li, ri := -1, -1, -1
	for i, k := range merged {
		for oi+1 < len(own) && own[oi+1] <= k {
			oi++
		}
		if left != nil {
			for li+1 < len(left.cat) && left.cat[li+1].key <= k {
				li++
			}
		}
		if right != nil {
			for ri+1 < len(right.cat) && right.cat[ri+1].key <= k {
				ri++
			}
		}
		cat[i] = entry{key: k, ownPred: int32(oi), leftPos: int32(li), rightPos: int32(ri)}
	}
	return cat
}

// Cursor is a position in one node's catalog during a cascading descent.
type Cursor struct {
	node *Node
	pos  int // index of the last catalog entry with key ≤ x; -1 if none
	x    float64
}

// CatalogLen returns the augmented catalog length (diagnostics, space
// accounting).
func (n *Node) CatalogLen() int { return len(n.cat) }

// LeftChild and RightChild expose the built tree's structure for callers
// that mirror their own trees onto it.
func (n *Node) LeftChild() *Node  { return n.left }
func (n *Node) RightChild() *Node { return n.right }

// Search starts a descent: one binary search in the root catalog.
// Work: O(log |catalog|); every later step is O(1).
func (n *Node) Search(x float64) Cursor {
	pos := sort.Search(len(n.cat), func(i int) bool { return n.cat[i].key > x }) - 1
	return Cursor{node: n, pos: pos, x: x}
}

// OwnPred returns the index of the predecessor of x in this node's own
// keys (the largest own key ≤ x), or -1.
func (c Cursor) OwnPred() int {
	if c.pos < 0 {
		return -1
	}
	return int(c.node.cat[c.pos].ownPred)
}

// Left moves the cursor to the left child in O(1) amortized work.
func (c Cursor) Left() Cursor { return c.descend(c.node.left, true) }

// Right moves the cursor to the right child.
func (c Cursor) Right() Cursor { return c.descend(c.node.right, false) }

// Steps, for instrumentation: number of pointer-advance steps taken by all
// descents of this cursor chain is bounded by 2 per level (the sampling
// rate), which tests verify.
func (c Cursor) descend(child *Node, useLeft bool) Cursor {
	if child == nil {
		return Cursor{}
	}
	pos := -1
	if c.pos >= 0 {
		if useLeft {
			pos = int(c.node.cat[c.pos].leftPos)
		} else {
			pos = int(c.node.cat[c.pos].rightPos)
		}
	}
	// The bridge points at the predecessor among the *sampled* entries;
	// at most one unsampled child entry can sit between two samples, so a
	// constant advance restores the exact predecessor.
	for pos+1 < len(child.cat) && child.cat[pos+1].key <= c.x {
		pos++
	}
	return Cursor{node: child, pos: pos, x: c.x}
}

// Valid reports whether the cursor points at a real node (descending past
// a leaf yields an invalid cursor).
func (c Cursor) Valid() bool { return c.node != nil }
