// Package interval implements the building blocks of the paper's
// Theorem 4 (top-k interval stabbing): a dynamic interval tree answering
// prioritized-stabbing and stabbing-max queries (the roles played in the
// paper by Tao's ray-stabbing structure [34] and the stabbing-semigroup
// structure of Agarwal et al. [7]), and the folklore static 1D stabbing-max
// structure of Section 5.2.
//
// Input elements are closed intervals [Lo, Hi] ⊂ ℝ with distinct real
// weights; a predicate is a stabbing point q ∈ ℝ, satisfied by intervals
// containing q.
//
// # I/O accounting
//
// These structures stand in for the black boxes the paper cites — Tao '12
// for prioritized ray stabbing (O(log_B n + t/B) I/Os) and Agarwal et
// al. '12 for dynamic stabbing max (O(log_B n)). They charge the simulated
// EM machine exactly that contract: skeleton root-to-leaf walks charge
// em.Tracker.PathCost (blocked tree layout, one I/O per ⌊log₂B⌋ nodes,
// i.e. O(log_B n) per walk) and every reported item charges ScanCost
// (B items per block, the O(t/B) output term). The in-memory treap
// traversals that realize the queries are RAM work and are measured by
// the wall-clock benchmarks, not double-billed as I/Os — this keeps the
// reduction experiments (E4–E7) measuring precisely the quantities
// Theorems 1 and 2 are stated over. See DESIGN.md's substitution table.
package interval

import (
	"fmt"
	"math"
	"sort"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/treap"
)

// Interval is a closed interval [Lo, Hi].
type Interval struct {
	Lo, Hi float64
}

// Span makes Interval satisfy Spanned, so the structures can index bare
// intervals directly.
func (iv Interval) Span() Interval { return iv }

// Contains reports whether x ∈ [Lo, Hi].
func (iv Interval) Contains(x float64) bool { return iv.Lo <= x && x <= iv.Hi }

// Valid reports whether the interval is well-formed (Lo ≤ Hi, no NaNs).
func (iv Interval) Valid() bool {
	return !math.IsNaN(iv.Lo) && !math.IsNaN(iv.Hi) && iv.Lo <= iv.Hi
}

// Spanned is implemented by any element type that carries an interval.
type Spanned interface {
	Span() Interval
}

// Tree is a dynamic interval tree: a balanced skeleton over the endpoint
// coordinates, with each interval stored at the highest node whose center
// it contains, in two weight-augmented treaps (keyed by Lo and by Hi).
//
// Queries:
//   - ReportAbove(q, τ): every item containing q with weight ≥ τ, in
//     O(log² n + t) time / O(log n·log_B n + t/B)-style charged I/Os;
//   - MaxItem(q): the heaviest item containing q.
//
// Updates run in O(log² n) expected time; the skeleton is rebuilt after
// n/2 updates, so new endpoints degrade nothing asymptotically (amortized).
//
// Tree implements core.DynamicPrioritized[float64, V] and
// core.DynamicMax[float64, V].
type Tree[V Spanned] struct {
	tracker *em.Tracker
	root    *tnode[V]
	loc     map[float64]locRef[V]
	n0      int // size at last (re)build
	churn   int // updates since last (re)build
	run     em.BlockID
	blocks  int64
}

type tnode[V Spanned] struct {
	center      float64
	byLo, byHi  treap.Tree[V]
	rest        []core.Item[V] // post-build intervals that fit no node center
	left, right *tnode[V]
}

type locRef[V Spanned] struct {
	nd     *tnode[V]
	span   Interval
	inRest bool
}

// NewTree builds a tree over items. tracker may be nil. It returns an
// error on duplicate weights or malformed intervals.
func NewTree[V Spanned](items []core.Item[V], tracker *em.Tracker) (*Tree[V], error) {
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	for _, it := range items {
		if !it.Value.Span().Valid() {
			return nil, fmt.Errorf("interval: malformed interval %+v", it.Value.Span())
		}
	}
	t := &Tree[V]{tracker: tracker}
	t.build(items)
	return t, nil
}

func (t *Tree[V]) build(items []core.Item[V]) {
	// Space accounting: release the previous incarnation's blocks, then
	// allocate the new ones (items at ~4 words each, plus the skeleton).
	if t.tracker != nil {
		if t.run != 0 {
			t.tracker.FreeRun(t.run, int(t.blocks))
			t.run, t.blocks = 0, 0
		}
		if len(items) > 0 {
			t.blocks = em.BlocksFor(len(items), 4, t.tracker.B())
			t.run = t.tracker.AllocRun(int(t.blocks))
		}
	}
	coords := make([]float64, 0, 2*len(items))
	for _, it := range items {
		sp := it.Value.Span()
		coords = append(coords, sp.Lo, sp.Hi)
	}
	sort.Float64s(coords)
	coords = dedupSorted(coords)

	t.root = buildSkeleton[V](coords, 0, len(coords))
	t.loc = make(map[float64]locRef[V], len(items))
	t.n0 = len(items)
	t.churn = 0
	for _, it := range items {
		t.place(it)
	}
}

func dedupSorted(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func buildSkeleton[V Spanned](coords []float64, a, b int) *tnode[V] {
	if a >= b {
		return nil
	}
	mid := a + (b-a)/2
	nd := &tnode[V]{center: coords[mid]}
	nd.left = buildSkeleton[V](coords, a, mid)
	nd.right = buildSkeleton[V](coords, mid+1, b)
	return nd
}

// place routes an item to its node and records its location.
func (t *Tree[V]) place(it core.Item[V]) {
	sp := it.Value.Span()
	nd := t.root
	if nd == nil {
		// Empty skeleton (built from zero items): hold everything in a
		// synthetic root's rest list.
		t.root = &tnode[V]{center: sp.Lo}
		nd = t.root
	}
	for {
		if sp.Contains(nd.center) {
			nd.byLo.Insert(treap.Key{K: sp.Lo, W: it.Weight}, it.Value)
			nd.byHi.Insert(treap.Key{K: sp.Hi, W: it.Weight}, it.Value)
			t.loc[it.Weight] = locRef[V]{nd: nd, span: sp}
			return
		}
		var next *tnode[V]
		if sp.Hi < nd.center {
			next = nd.left
		} else {
			next = nd.right
		}
		if next == nil {
			nd.rest = append(nd.rest, it)
			t.loc[it.Weight] = locRef[V]{nd: nd, span: sp, inRest: true}
			return
		}
		nd = next
	}
}

// Len returns the number of stored items.
func (t *Tree[V]) Len() int { return len(t.loc) }

// ReportAbove implements core.Prioritized: emit every item containing q
// with weight ≥ tau.
func (t *Tree[V]) ReportAbove(q float64, tau float64, emit func(core.Item[V]) bool) {
	emitted, pathNodes, restScanned := 0, 0, 0
	defer func() {
		t.chargeQuery(pathNodes, restScanned, emitted)
	}()

	visit := func(k treap.Key, v V) bool {
		emitted++
		return emit(core.Item[V]{Value: v, Weight: k.W})
	}
	nd := t.root
	for nd != nil {
		pathNodes++
		restScanned += len(nd.rest)
		for _, it := range nd.rest {
			if it.Weight >= tau && it.Value.Span().Contains(q) {
				emitted++
				if !emit(it) {
					return
				}
			}
		}
		switch {
		case q < nd.center:
			if !nd.byLo.PrefixReportAbove(q, tau, visit) {
				return
			}
			nd = nd.left
		case q > nd.center:
			if !nd.byHi.SuffixReportAbove(q, tau, visit) {
				return
			}
			nd = nd.right
		default: // q == center: every item at this node contains q
			nd.byLo.PrefixReportAbove(math.Inf(1), tau, visit)
			return
		}
	}
}

// MaxItem implements core.Max: the heaviest item containing q.
func (t *Tree[V]) MaxItem(q float64) (core.Item[V], bool) {
	best := core.Item[V]{Weight: math.Inf(-1)}
	found := false
	pathNodes, restScanned := 0, 0

	nd := t.root
	for nd != nil {
		pathNodes++
		restScanned += len(nd.rest)
		for _, it := range nd.rest {
			if it.Weight > best.Weight && it.Value.Span().Contains(q) {
				best, found = it, true
			}
		}
		var k treap.Key
		var v V
		var ok bool
		switch {
		case q < nd.center:
			k, v, ok = nd.byLo.PrefixMax(q)
			if ok && k.W > best.Weight {
				best, found = core.Item[V]{Value: v, Weight: k.W}, true
			}
			nd = nd.left
		case q > nd.center:
			k, v, ok = nd.byHi.SuffixMax(q)
			if ok && k.W > best.Weight {
				best, found = core.Item[V]{Value: v, Weight: k.W}, true
			}
			nd = nd.right
		default:
			k, v, ok = nd.byLo.PrefixMax(math.Inf(1))
			if ok && k.W > best.Weight {
				best, found = core.Item[V]{Value: v, Weight: k.W}, true
			}
			nd = nil
		}
	}
	t.chargeQuery(pathNodes, restScanned, 0)
	return best, found
}

// Count returns the number of stored intervals containing q, in
// O(log² n) expected time / O(log_B n)-charged I/Os — the counting
// structure role in the Rahul–Janardan counting reduction (paper §2).
// For interval stabbing exact counting is easy, which the paper notes
// only improves that baseline.
func (t *Tree[V]) Count(q float64) int {
	total, pathNodes := 0, 0
	nd := t.root
	for nd != nil {
		pathNodes++
		for _, it := range nd.rest {
			if it.Value.Span().Contains(q) {
				total++
			}
		}
		switch {
		case q < nd.center:
			total += nd.byLo.PrefixCount(q)
			nd = nd.left
		case q > nd.center:
			total += nd.byHi.SuffixCount(q)
			nd = nd.right
		default:
			total += nd.byLo.Len()
			nd = nil
		}
	}
	if t.tracker != nil {
		t.tracker.PathCost(pathNodes)
	}
	return total
}

// Insert implements core.Updatable. Duplicate weights overwrite silently
// is NOT the semantics here: inserting an existing weight panics, because
// it would corrupt the distinct-weights invariant the reductions rely on.
func (t *Tree[V]) Insert(it core.Item[V]) {
	if _, dup := t.loc[it.Weight]; dup {
		panic(fmt.Sprintf("interval: duplicate weight %v", it.Weight))
	}
	if !it.Value.Span().Valid() {
		panic(fmt.Sprintf("interval: malformed interval %+v", it.Value.Span()))
	}
	t.place(it)
	t.chargeUpdate()
	t.bumpChurn()
}

// DeleteWeight implements core.Updatable.
func (t *Tree[V]) DeleteWeight(w float64) bool {
	ref, ok := t.loc[w]
	if !ok {
		return false
	}
	if ref.inRest {
		for i, it := range ref.nd.rest {
			if it.Weight == w {
				last := len(ref.nd.rest) - 1
				ref.nd.rest[i] = ref.nd.rest[last]
				ref.nd.rest = ref.nd.rest[:last]
				break
			}
		}
	} else {
		ref.nd.byLo.Delete(treap.Key{K: ref.span.Lo, W: w})
		ref.nd.byHi.Delete(treap.Key{K: ref.span.Hi, W: w})
	}
	delete(t.loc, w)
	t.chargeUpdate()
	t.bumpChurn()
	return true
}

func (t *Tree[V]) bumpChurn() {
	t.churn++
	if t.churn > t.n0/2+32 {
		t.build(t.collect())
	}
}

// Walk visits every stored item in unspecified order, stopping early if
// visit returns false.
func (t *Tree[V]) Walk(visit func(core.Item[V]) bool) {
	for _, it := range t.collect() {
		if !visit(it) {
			return
		}
	}
}

func (t *Tree[V]) collect() []core.Item[V] {
	items := make([]core.Item[V], 0, len(t.loc))
	var walk func(nd *tnode[V])
	walk = func(nd *tnode[V]) {
		if nd == nil {
			return
		}
		nd.byLo.Ascend(func(k treap.Key, v V) bool {
			items = append(items, core.Item[V]{Value: v, Weight: k.W})
			return true
		})
		items = append(items, nd.rest...)
		walk(nd.left)
		walk(nd.right)
	}
	walk(t.root)
	return items
}

func (t *Tree[V]) chargeQuery(pathNodes, restScanned, emitted int) {
	if t.tracker == nil {
		return
	}
	// Charge the contract of the cited black box: one skeleton descent
	// (O(log_B n) after blocking) plus the O(t/B) output term. The treap
	// walks are the RAM work realizing that contract; see the package
	// comment.
	t.tracker.PathCost(pathNodes)
	t.tracker.ScanCost(restScanned + emitted)
}

func (t *Tree[V]) chargeUpdate() {
	if t.tracker == nil {
		return
	}
	// One skeleton descent plus two treap updates: O(log n) nodes.
	t.tracker.PathCost(2 * approxLog2(len(t.loc)+2))
	t.tracker.ScanCost(1)
}

func approxLog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// Depth returns the skeleton depth (for balance tests).
func (t *Tree[V]) Depth() int {
	var d func(*tnode[V]) int
	d = func(nd *tnode[V]) int {
		if nd == nil {
			return 0
		}
		l, r := d(nd.left), d(nd.right)
		if l < r {
			l = r
		}
		return l + 1
	}
	return d(t.root)
}
