package interval

import (
	"math"
	"sort"
	"testing"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/wrand"
)

// genIntervals returns n random intervals with distinct weights.
func genIntervals(g *wrand.RNG, n int) []core.Item[Interval] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]core.Item[Interval], n)
	for i := range items {
		lo := g.Float64() * 100
		items[i] = core.Item[Interval]{
			Value:  Interval{Lo: lo, Hi: lo + g.ExpFloat64()*10},
			Weight: ws[i],
		}
	}
	return items
}

func oracleAbove(items []core.Item[Interval], q, tau float64) []core.Item[Interval] {
	var out []core.Item[Interval]
	for _, it := range items {
		if it.Weight >= tau && it.Value.Contains(q) {
			out = append(out, it)
		}
	}
	core.SortByWeightDesc(out)
	return out
}

func oracleMax(items []core.Item[Interval], q float64) (core.Item[Interval], bool) {
	best, ok := core.Item[Interval]{Weight: math.Inf(-1)}, false
	for _, it := range items {
		if it.Value.Contains(q) && it.Weight > best.Weight {
			best, ok = it, true
		}
	}
	return best, ok
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{2, 5}
	for _, c := range []struct {
		x    float64
		want bool
	}{{2, true}, {5, true}, {3.5, true}, {1.999, false}, {5.001, false}} {
		if got := iv.Contains(c.x); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.x, got, c.want)
		}
	}
	if !(Interval{3, 3}).Valid() {
		t.Error("degenerate point interval should be valid")
	}
	if (Interval{5, 2}).Valid() {
		t.Error("reversed interval should be invalid")
	}
	if (Interval{math.NaN(), 2}).Valid() {
		t.Error("NaN interval should be invalid")
	}
}

func TestTreeReportAboveAgainstOracle(t *testing.T) {
	g := wrand.New(1)
	items := genIntervals(g, 2000)
	tree, err := NewTree(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		q := g.Float64() * 120
		tau := g.Float64() * 1.2e6
		var got []core.Item[Interval]
		tree.ReportAbove(q, tau, func(it core.Item[Interval]) bool {
			got = append(got, it)
			return true
		})
		core.SortByWeightDesc(got)
		want := oracleAbove(items, q, tau)
		if len(got) != len(want) {
			t.Fatalf("q=%v tau=%v: got %d, want %d", q, tau, len(got), len(want))
		}
		for i := range got {
			if got[i].Weight != want[i].Weight {
				t.Fatalf("q=%v tau=%v: item %d weight %v, want %v", q, tau, i, got[i].Weight, want[i].Weight)
			}
		}
	}
}

func TestTreeQueryAtEndpointsAndCenters(t *testing.T) {
	// Exact endpoint coordinates are the classic off-by-one trap for
	// closed intervals; probe every one of them.
	g := wrand.New(2)
	items := genIntervals(g, 300)
	tree, err := NewTree(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items {
		for _, q := range []float64{it.Value.Lo, it.Value.Hi, (it.Value.Lo + it.Value.Hi) / 2} {
			count := 0
			tree.ReportAbove(q, math.Inf(-1), func(core.Item[Interval]) bool {
				count++
				return true
			})
			if want := len(oracleAbove(items, q, math.Inf(-1))); count != want {
				t.Fatalf("q=%v: reported %d, want %d", q, count, want)
			}
		}
	}
}

func TestTreeMaxAgainstOracle(t *testing.T) {
	g := wrand.New(3)
	items := genIntervals(g, 1500)
	tree, err := NewTree(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 300; trial++ {
		q := g.Float64() * 120
		got, gok := tree.MaxItem(q)
		want, wok := oracleMax(items, q)
		if gok != wok {
			t.Fatalf("q=%v: ok=%v, want %v", q, gok, wok)
		}
		if gok && got.Weight != want.Weight {
			t.Fatalf("q=%v: max %v, want %v", q, got.Weight, want.Weight)
		}
	}
}

func TestTreeEarlyStop(t *testing.T) {
	g := wrand.New(4)
	items := genIntervals(g, 500)
	tree, _ := NewTree(items, nil)
	count := 0
	tree.ReportAbove(50, math.Inf(-1), func(core.Item[Interval]) bool {
		count++
		return count < 4
	})
	if count != 4 {
		t.Fatalf("early stop visited %d, want 4", count)
	}
}

func TestTreeInsertDeleteChurn(t *testing.T) {
	g := wrand.New(5)
	items := genIntervals(g, 600)
	tree, err := NewTree(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	live := append([]core.Item[Interval](nil), items...)

	check := func() {
		t.Helper()
		for trial := 0; trial < 20; trial++ {
			q := g.Float64() * 130
			got, gok := tree.MaxItem(q)
			want, wok := oracleMax(live, q)
			if gok != wok || (gok && got.Weight != want.Weight) {
				t.Fatalf("q=%v: max (%v,%v), want (%v,%v)", q, got.Weight, gok, want.Weight, wok)
			}
			count := 0
			tau := g.Float64() * 1.2e6
			tree.ReportAbove(q, tau, func(it core.Item[Interval]) bool {
				count++
				return true
			})
			if want := len(oracleAbove(live, q, tau)); count != want {
				t.Fatalf("q=%v tau=%v: reported %d, want %d", q, tau, count, want)
			}
		}
	}

	for round := 0; round < 6; round++ {
		// Insert intervals with brand-new coordinates (stressing the
		// rest-list path) and delete random survivors.
		for i := 0; i < 120; i++ {
			lo := g.Float64() * 130
			it := core.Item[Interval]{
				Value:  Interval{Lo: lo, Hi: lo + g.Float64()*0.5},
				Weight: 2e6 + g.Float64()*1e6,
			}
			if _, dup := tree.loc[it.Weight]; dup {
				continue
			}
			tree.Insert(it)
			live = append(live, it)
		}
		for i := 0; i < 100; i++ {
			victim := g.IntN(len(live))
			if !tree.DeleteWeight(live[victim].Weight) {
				t.Fatalf("DeleteWeight failed for live item")
			}
			live[victim] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		check()
	}
	if tree.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", tree.Len(), len(live))
	}
}

func TestTreeDeleteAbsentAndDuplicateInsert(t *testing.T) {
	g := wrand.New(6)
	items := genIntervals(g, 50)
	tree, _ := NewTree(items, nil)
	if tree.DeleteWeight(-1) {
		t.Fatal("deleted an absent weight")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate-weight insert did not panic")
		}
	}()
	tree.Insert(core.Item[Interval]{Value: Interval{0, 1}, Weight: items[0].Weight})
}

func TestTreeRejectsBadInput(t *testing.T) {
	bad := []core.Item[Interval]{{Value: Interval{5, 2}, Weight: 1}}
	if _, err := NewTree(bad, nil); err == nil {
		t.Fatal("reversed interval accepted")
	}
	dup := []core.Item[Interval]{
		{Value: Interval{0, 1}, Weight: 7},
		{Value: Interval{2, 3}, Weight: 7},
	}
	if _, err := NewTree(dup, nil); err == nil {
		t.Fatal("duplicate weights accepted")
	}
}

func TestTreeEmptyAndSingleton(t *testing.T) {
	tree, err := NewTree[Interval](nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tree.MaxItem(5); ok {
		t.Fatal("empty tree found a max")
	}
	tree.Insert(core.Item[Interval]{Value: Interval{1, 3}, Weight: 42})
	if it, ok := tree.MaxItem(2); !ok || it.Weight != 42 {
		t.Fatalf("singleton MaxItem = %+v,%v", it, ok)
	}
	if _, ok := tree.MaxItem(9); ok {
		t.Fatal("found max outside the only interval")
	}
}

func TestTreeDepthBalanced(t *testing.T) {
	g := wrand.New(7)
	items := genIntervals(g, 1<<13)
	tree, _ := NewTree(items, nil)
	if d := tree.Depth(); d > 16 {
		t.Fatalf("skeleton depth %d for 2^13 items (2^14 coords); want ~14", d)
	}
}

func TestTreeIOCharging(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 4})
	g := wrand.New(8)
	items := genIntervals(g, 1<<12)
	tree, err := NewTree(items, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.DropCache()
	tr.ResetCounters()
	tree.MaxItem(50)
	maxIOs := tr.Stats().IOs()
	if maxIOs == 0 {
		t.Fatal("MaxItem charged no I/Os")
	}
	// log2(4096) = 12 path nodes, treap walks ~12 each; /log2(64)=6
	// should stay well under a linear scan (4096/64 = 64 blocks).
	if maxIOs > 60 {
		t.Errorf("MaxItem charged %d I/Os; suspiciously close to a full scan", maxIOs)
	}

	tr.ResetCounters()
	count := 0
	tree.ReportAbove(50, math.Inf(-1), func(core.Item[Interval]) bool {
		count++
		return true
	})
	repIOs := tr.Stats().IOs()
	if repIOs == 0 && count > 0 {
		t.Fatal("ReportAbove charged no I/Os despite emitting items")
	}
	if int64(count) > 0 && repIOs > int64(count)+60 {
		t.Errorf("ReportAbove: %d I/Os for %d results; output term should be ~t/B", repIOs, count)
	}
}

func TestStabMax1DAgainstOracle(t *testing.T) {
	g := wrand.New(9)
	items := genIntervals(g, 1200)
	s, err := NewStabMax1D(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Random probes plus every endpoint (closed-boundary behavior).
	probes := make([]float64, 0, 400+2*len(items))
	for i := 0; i < 400; i++ {
		probes = append(probes, g.Float64()*130-5)
	}
	for _, it := range items {
		probes = append(probes, it.Value.Lo, it.Value.Hi)
	}
	for _, q := range probes {
		got, gok := s.MaxItem(q)
		want, wok := oracleMax(items, q)
		if gok != wok {
			t.Fatalf("q=%v: ok=%v, want %v", q, gok, wok)
		}
		if gok && got.Weight != want.Weight {
			t.Fatalf("q=%v: max %v, want %v", q, got.Weight, want.Weight)
		}
	}
}

func TestStabMax1DGapSemantics(t *testing.T) {
	items := []core.Item[Interval]{
		{Value: Interval{1, 2}, Weight: 10},
		{Value: Interval{2, 4}, Weight: 5},
		{Value: Interval{5, 6}, Weight: 7},
	}
	s, err := NewStabMax1D(items, nil)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		q      float64
		want   float64
		wantOK bool
	}{
		{0.5, 0, false}, // before everything
		{1, 10, true},   // left endpoint
		{2, 10, true},   // shared endpoint: heavier wins
		{3, 5, true},    // interior
		{4, 5, true},    // right endpoint
		{4.5, 0, false}, // gap between 4 and 5
		{5, 7, true},
		{6, 7, true},
		{6.5, 0, false}, // after everything
	}
	for _, c := range cases {
		got, ok := s.MaxItem(c.q)
		if ok != c.wantOK {
			t.Errorf("q=%v: ok=%v, want %v", c.q, ok, c.wantOK)
			continue
		}
		if ok && got.Weight != c.want {
			t.Errorf("q=%v: weight %v, want %v", c.q, got.Weight, c.want)
		}
	}
}

func TestStabMax1DIOCost(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 2})
	g := wrand.New(10)
	items := genIntervals(g, 1<<14)
	s, err := NewStabMax1D(items, tr)
	if err != nil {
		t.Fatal(err)
	}
	tr.DropCache()
	tr.ResetCounters()
	s.MaxItem(50)
	if ios := tr.Stats().IOs(); ios > 6 {
		t.Errorf("MaxItem cost %d I/Os; want O(log_B n) ≈ 3-4", ios)
	}
	s.Free()
}

func TestStabMax1DEmpty(t *testing.T) {
	s, err := NewStabMax1D[Interval](nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.MaxItem(3); ok {
		t.Fatal("empty structure found a max")
	}
}

func TestFactoriesRoundTrip(t *testing.T) {
	g := wrand.New(11)
	items := genIntervals(g, 400)

	pf := NewPrioritizedFactory[Interval](nil)
	p := pf(items)
	var got []core.Item[Interval]
	p.ReportAbove(50, math.Inf(-1), func(it core.Item[Interval]) bool {
		got = append(got, it)
		return true
	})
	if want := len(oracleAbove(items, 50, math.Inf(-1))); len(got) != want {
		t.Fatalf("factory prioritized reported %d, want %d", len(got), want)
	}

	mf := NewMaxFactory[Interval](nil)
	m := mf(items)
	gotM, gok := m.MaxItem(50)
	wantM, wok := oracleMax(items, 50)
	if gok != wok || (gok && gotM.Weight != wantM.Weight) {
		t.Fatalf("factory max = (%v,%v), want (%v,%v)", gotM.Weight, gok, wantM.Weight, wok)
	}

	if !Match(50.0, Interval{40, 60}) || Match(50.0, Interval{51, 60}) {
		t.Fatal("Match predicate wrong")
	}
}

func TestSweepDeterministicOrderIndependence(t *testing.T) {
	g := wrand.New(12)
	items := genIntervals(g, 300)
	shuffled := append([]core.Item[Interval](nil), items...)
	g.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })

	a, _ := NewStabMax1D(items, nil)
	b, _ := NewStabMax1D(shuffled, nil)
	qs := make([]float64, 0, 100)
	for i := 0; i < 100; i++ {
		qs = append(qs, g.Float64()*130)
	}
	sort.Float64s(qs)
	for _, q := range qs {
		ga, oka := a.MaxItem(q)
		gb, okb := b.MaxItem(q)
		if oka != okb || (oka && ga.Weight != gb.Weight) {
			t.Fatalf("q=%v: order-dependent answers %v/%v vs %v/%v", q, ga.Weight, oka, gb.Weight, okb)
		}
	}
}
