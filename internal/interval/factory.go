package interval

import (
	"topk/internal/core"
	"topk/internal/em"
)

// Factory adapters plugging the interval structures into the reductions of
// internal/core. The predicate type is the stabbing point (float64).
//
// Lambda: interval stabbing is 1-polynomially bounded — the 2n endpoints
// induce at most 2n+1 distinct outcomes q(D), so λ = 1 suffices for
// Theorem 1 (any λ ≥ 1 is sound).
const Lambda = 1

// NewPrioritizedFactory returns a factory building interval trees for
// arbitrary subsets, as the Theorem 1/2 reductions require. Build errors
// panic: the reductions feed back subsets of an already-validated input,
// so a failure here is a programming error, not an input error.
func NewPrioritizedFactory[V Spanned](tracker *em.Tracker) core.PrioritizedFactory[float64, V] {
	return func(items []core.Item[V]) core.Prioritized[float64, V] {
		t, err := NewTree(items, tracker)
		if err != nil {
			panic(err)
		}
		return t
	}
}

// NewDynamicPrioritizedFactory is the updatable variant.
func NewDynamicPrioritizedFactory[V Spanned](tracker *em.Tracker) core.DynamicPrioritizedFactory[float64, V] {
	return func(items []core.Item[V]) core.DynamicPrioritized[float64, V] {
		t, err := NewTree(items, tracker)
		if err != nil {
			panic(err)
		}
		return t
	}
}

// NewMaxFactory returns a factory building the static folklore stabbing-max
// structure (Section 5.2) for arbitrary subsets.
func NewMaxFactory[V Spanned](tracker *em.Tracker) core.MaxFactory[float64, V] {
	return func(items []core.Item[V]) core.Max[float64, V] {
		s, err := NewStabMax1D(items, tracker)
		if err != nil {
			panic(err)
		}
		return s
	}
}

// NewDynamicMaxFactory returns a factory building dynamic stabbing-max
// structures (interval trees queried only for their max), the role of the
// stabbing-semigroup structure of Agarwal et al. in Theorem 4.
func NewDynamicMaxFactory[V Spanned](tracker *em.Tracker) core.DynamicMaxFactory[float64, V] {
	return func(items []core.Item[V]) core.DynamicMax[float64, V] {
		t, err := NewTree(items, tracker)
		if err != nil {
			panic(err)
		}
		return t
	}
}

// Match reports whether the interval contains the stabbing point; this is
// the predicate evaluator the reductions use for base-case scans.
func Match[V Spanned](q float64, v V) bool { return v.Span().Contains(q) }

// NewCountingFactory returns a factory building exact stabbing-count
// structures (interval trees queried only through Count), the counting
// role in the Rahul–Janardan counting reduction of the paper's Section 2.
func NewCountingFactory[V Spanned](tracker *em.Tracker) core.CountingFactory[float64, V] {
	return func(items []core.Item[V]) core.Counting[float64] {
		t, err := NewTree(items, tracker)
		if err != nil {
			panic(err)
		}
		return countAdapter[V]{t}
	}
}

type countAdapter[V Spanned] struct {
	t *Tree[V]
}

func (c countAdapter[V]) Count(q float64) int { return c.t.Count(q) }
