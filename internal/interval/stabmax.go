package interval

import (
	"fmt"
	"math"
	"sort"

	"topk/internal/btree"
	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/treap"
)

// StabMax1D is the folklore static stabbing-max structure of the paper's
// Section 5.2: the 2n endpoints split ℝ into at most 2n+1 regions, each
// annotated with the heaviest interval spanning it; a query is a
// predecessor search. O(n) space, O(log_B n) I/Os per query.
//
// Region granularity is finer than the paper's prose to honor closed
// endpoints exactly: for each endpoint coordinate e_i there is a point
// region {e_i} and an open gap region (e_i, e_{i+1}).
//
// StabMax1D implements core.Max[float64, V].
type StabMax1D[V Spanned] struct {
	idx     *btree.StaticIndex
	atPoint []core.Item[V] // answer for x == coord(i)
	inGap   []core.Item[V] // answer for coord(i) < x < coord(i+1)
	okPoint []bool
	okGap   []bool
	tracker *em.Tracker
	run     em.BlockID
	blocks  int64
}

// NewStabMax1D builds the structure; tracker may be nil.
func NewStabMax1D[V Spanned](items []core.Item[V], tracker *em.Tracker) (*StabMax1D[V], error) {
	if err := core.ValidateWeights(items); err != nil {
		return nil, err
	}
	coords := make([]float64, 0, 2*len(items))
	for _, it := range items {
		sp := it.Value.Span()
		if !sp.Valid() {
			return nil, fmt.Errorf("interval: malformed interval %+v", sp)
		}
		coords = append(coords, sp.Lo, sp.Hi)
	}
	sort.Float64s(coords)
	coords = dedupSorted(coords)

	s := &StabMax1D[V]{
		idx:     btree.NewStaticIndex(coords, tracker),
		atPoint: make([]core.Item[V], len(coords)),
		inGap:   make([]core.Item[V], len(coords)),
		okPoint: make([]bool, len(coords)),
		okGap:   make([]bool, len(coords)),
		tracker: tracker,
	}
	if tracker != nil && len(coords) > 0 {
		s.blocks = em.BlocksFor(2*len(coords), 4, tracker.B())
		s.run = tracker.AllocRun(int(s.blocks))
	}

	// Sweep: group items by Lo (starts) and Hi (ends); at each coordinate
	// first add starters, record the point answer, then drop enders and
	// record the gap answer.
	starts := make(map[float64][]core.Item[V])
	ends := make(map[float64][]core.Item[V])
	for _, it := range items {
		sp := it.Value.Span()
		starts[sp.Lo] = append(starts[sp.Lo], it)
		ends[sp.Hi] = append(ends[sp.Hi], it)
	}
	var active treap.Tree[V]
	for i, c := range coords {
		for _, it := range starts[c] {
			active.Insert(treap.Key{K: it.Weight, W: it.Weight}, it.Value)
		}
		if k, v, ok := active.SuffixMax(math.Inf(-1)); ok {
			s.atPoint[i] = core.Item[V]{Value: v, Weight: k.W}
			s.okPoint[i] = true
		}
		for _, it := range ends[c] {
			active.Delete(treap.Key{K: it.Weight, W: it.Weight})
		}
		if k, v, ok := active.SuffixMax(math.Inf(-1)); ok {
			s.inGap[i] = core.Item[V]{Value: v, Weight: k.W}
			s.okGap[i] = true
		}
	}
	if active.Len() != 0 {
		return nil, fmt.Errorf("interval: sweep left %d active intervals; corrupt input", active.Len())
	}
	return s, nil
}

// Len returns the number of distinct endpoint coordinates.
func (s *StabMax1D[V]) Len() int { return s.idx.Len() }

// MaxItem returns the heaviest interval containing q.
func (s *StabMax1D[V]) MaxItem(q float64) (core.Item[V], bool) {
	i := s.idx.PredecessorIdx(q) // charges O(log_B n) reads
	if i < 0 {
		return core.Item[V]{}, false
	}
	return s.AnswerAt(i, s.idx.Key(i) == q)
}

// Boundaries returns the sorted region-boundary coordinates; read-only.
// Together with AnswerAt it lets callers (fractional cascading, §5.2)
// replace the predecessor search with their own.
func (s *StabMax1D[V]) Boundaries() []float64 { return s.idx.Keys() }

// AnswerAt returns the stabbing-max answer for the region selected by
// boundary index i: the point region {boundary_i} when exact, otherwise
// the open gap following it. One block read is charged for the answer
// lookup.
func (s *StabMax1D[V]) AnswerAt(i int, exact bool) (core.Item[V], bool) {
	if i < 0 || i >= len(s.atPoint) {
		return core.Item[V]{}, false
	}
	if s.tracker != nil && s.run != 0 {
		per := s.tracker.B() / 4
		if per < 1 {
			per = 1
		}
		blk := em.BlockID(i / per)
		if int64(blk) >= s.blocks {
			blk = em.BlockID(s.blocks - 1)
		}
		s.tracker.Read(s.run + blk)
	}
	if exact {
		return s.atPoint[i], s.okPoint[i]
	}
	return s.inGap[i], s.okGap[i]
}

// Free releases the structure's blocks.
func (s *StabMax1D[V]) Free() {
	if s.tracker == nil {
		return
	}
	s.idx.Free()
	if s.run != 0 {
		s.tracker.FreeRun(s.run, int(s.blocks))
		s.run = 0
	}
}
