package interval

import (
	"math"
	"testing"

	"topk/internal/core"
)

// FuzzTreeOps drives random insert/delete/query sequences against a slice
// oracle. Byte quads encode operations; coordinates are small integers so
// endpoint collisions (the interval tree's trickiest case) are frequent.
func FuzzTreeOps(f *testing.F) {
	f.Add([]byte{0, 2, 5, 1, 0, 2, 5, 2, 2, 0, 0, 3})
	f.Add([]byte{0, 1, 1, 1, 1, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tree, err := NewTree[Interval](nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		var live []core.Item[Interval]
		nextW := 1.0
		for i := 0; i+3 < len(data); i += 4 {
			op := data[i] % 3
			a, b := float64(data[i+1]%16), float64(data[i+2]%16)
			if a > b {
				a, b = b, a
			}
			switch op {
			case 0:
				it := core.Item[Interval]{Value: Interval{Lo: a, Hi: b}, Weight: nextW}
				nextW++
				tree.Insert(it)
				live = append(live, it)
			case 1:
				if len(live) == 0 {
					continue
				}
				idx := int(data[i+3]) % len(live)
				if !tree.DeleteWeight(live[idx].Weight) {
					t.Fatalf("delete of live weight %v failed", live[idx].Weight)
				}
				live[idx] = live[len(live)-1]
				live = live[:len(live)-1]
			case 2:
				q := float64(data[i+3]%20) * 0.9
				want := 0
				bestW := math.Inf(-1)
				for _, it := range live {
					if it.Value.Contains(q) {
						want++
						if it.Weight > bestW {
							bestW = it.Weight
						}
					}
				}
				got := 0
				tree.ReportAbove(q, math.Inf(-1), func(it core.Item[Interval]) bool {
					if !it.Value.Contains(q) {
						t.Fatalf("emitted non-containing interval %+v for q=%v", it.Value, q)
					}
					got++
					return true
				})
				if got != want {
					t.Fatalf("q=%v: reported %d, want %d", q, got, want)
				}
				m, ok := tree.MaxItem(q)
				if ok != (want > 0) || (ok && m.Weight != bestW) {
					t.Fatalf("q=%v: max (%v,%v), want (%v,%v)", q, m.Weight, ok, bestW, want > 0)
				}
				if c := tree.Count(q); c != want {
					t.Fatalf("q=%v: Count=%d, want %d", q, c, want)
				}
			}
		}
		if tree.Len() != len(live) {
			t.Fatalf("Len=%d, live=%d", tree.Len(), len(live))
		}
	})
}
