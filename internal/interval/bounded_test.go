package interval

import (
	"fmt"
	"math"
	"sort"
	"testing"

	"topk/internal/core"
	"topk/internal/wrand"
)

// TestPolynomialBoundedness verifies the hypothesis Theorem 1 rests on for
// this problem: interval stabbing is λ-polynomially bounded with λ = 1 —
// the 2n endpoints split ℝ into at most 2n+1 regions, each with one
// outcome q(D). We enumerate the outcomes exactly by probing one
// representative per region (and each endpoint itself) and deduplicating
// the result sets.
func TestPolynomialBoundedness(t *testing.T) {
	g := wrand.New(55)
	for _, n := range []int{5, 20, 100} {
		items := genIntervals(g, n)

		coords := make([]float64, 0, 2*n)
		for _, it := range items {
			coords = append(coords, it.Value.Lo, it.Value.Hi)
		}
		sort.Float64s(coords)

		probes := make([]float64, 0, 4*n+2)
		probes = append(probes, coords[0]-1, coords[len(coords)-1]+1)
		for i, c := range coords {
			probes = append(probes, c) // the endpoint itself
			if i+1 < len(coords) && coords[i+1] > c {
				probes = append(probes, (c+coords[i+1])/2) // the open gap
			}
		}

		outcomes := map[string]struct{}{}
		for _, q := range probes {
			outcomes[outcomeKey(items, q)] = struct{}{}
		}
		bound := 2*len(coordsDedup(coords)) + 1
		if len(outcomes) > bound {
			t.Fatalf("n=%d: %d distinct outcomes > region bound %d — λ=1 claim broken",
				n, len(outcomes), bound)
		}
		// λ = Lambda must also cover it asymptotically: c·n^λ with c = 3.
		if float64(len(outcomes)) > 3*math.Pow(float64(n), Lambda) {
			t.Fatalf("n=%d: %d outcomes exceed 3·n^λ (λ=%d)", n, len(outcomes), Lambda)
		}
	}
}

func coordsDedup(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			out = append(out, x)
		}
	}
	return out
}

func outcomeKey(items []core.Item[Interval], q float64) string {
	var ws []float64
	for _, it := range items {
		if it.Value.Contains(q) {
			ws = append(ws, it.Weight)
		}
	}
	sort.Float64s(ws)
	return fmt.Sprint(ws)
}
