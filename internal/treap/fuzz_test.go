package treap

import (
	"math"
	"testing"
)

// FuzzTreapOps drives random op sequences against a map oracle and the
// structural invariant checker. Each byte triple encodes one operation.
func FuzzTreapOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 1, 1, 2, 2, 1, 2})
	f.Add([]byte{0, 5, 5, 0, 5, 6, 1, 5, 5})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		tr := &Tree[int]{}
		oracle := map[Key]int{}
		for i := 0; i+2 < len(data); i += 3 {
			op, kb, wb := data[i]%3, data[i+1]%32, data[i+2]%32
			k := Key{K: float64(kb), W: float64(wb)}
			switch op {
			case 0:
				tr.Insert(k, i)
				oracle[k] = i
			case 1:
				got := tr.Delete(k)
				_, want := oracle[k]
				if got != want {
					t.Fatalf("Delete(%v) = %v, oracle %v", k, got, want)
				}
				delete(oracle, k)
			case 2:
				got, ok := tr.Get(k)
				want, wok := oracle[k]
				if ok != wok || (ok && got != want) {
					t.Fatalf("Get(%v) = (%v,%v), oracle (%v,%v)", k, got, ok, want, wok)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		if tr.Len() != len(oracle) {
			t.Fatalf("Len=%d oracle=%d", tr.Len(), len(oracle))
		}
		// Cross-check one aggregate per sequence.
		wantMax := math.Inf(-1)
		for k := range oracle {
			if k.W > wantMax {
				wantMax = k.W
			}
		}
		gotMax, ok := tr.MaxWeight()
		if (len(oracle) > 0) != ok || (ok && gotMax != wantMax) {
			t.Fatalf("MaxWeight = (%v,%v), want (%v,%v)", gotMax, ok, wantMax, len(oracle) > 0)
		}
	})
}

func TestInvariantsAfterHeavyChurn(t *testing.T) {
	tr := &Tree[int]{}
	for i := 0; i < 5000; i++ {
		tr.Insert(Key{K: float64(i % 97), W: float64(i)}, i)
		if i%3 == 0 {
			tr.Delete(Key{K: float64((i / 2) % 97), W: float64(i / 2)})
		}
		if i%512 == 0 {
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("after %d ops: %v", i, err)
			}
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
