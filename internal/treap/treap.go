// Package treap implements a weight-augmented balanced search tree
// (a treap with deterministic hashed priorities) used as the secondary
// structure inside the geometric indexes of this repository.
//
// Entries are keyed by a primary coordinate K with the entry's weight W as
// a tiebreak, and every subtree is augmented with the maximum weight it
// contains. This supports the two query families the paper's building
// blocks need:
//
//   - prefix/suffix reporting above a weight threshold: "report every
//     entry with K ≤ x (or K ≥ x) and W ≥ τ", output-sensitively, by
//     pruning subtrees whose max weight falls below τ;
//   - prefix/suffix max: "the heaviest entry with K ≤ x (or K ≥ x)".
//
// All operations run in O(log n) expected time plus output. Priorities are
// a deterministic hash of the key, so a tree's shape depends only on its
// key set — structures are reproducible and tests are deterministic.
package treap

import "math"

// Key orders entries by primary coordinate K, breaking ties by weight W.
// Under the paper's distinct-weights assumption a Key identifies an entry
// uniquely even when primary coordinates collide.
type Key struct {
	K float64 // primary search coordinate
	W float64 // entry weight (distinct across a structure)
}

// Less is the strict lexicographic order on (K, W).
func (a Key) Less(b Key) bool {
	if a.K != b.K {
		return a.K < b.K
	}
	return a.W < b.W
}

type node[V any] struct {
	key         Key
	val         V
	prio        uint64
	maxW        float64 // max weight in this subtree
	size        int
	left, right *node[V]
}

// Tree is a max-weight-augmented treap. The zero value is an empty tree.
//
// Queries never mutate the tree (their I/O accounting is charged by the
// callers, who know the blocked layout), so any number of them may run
// concurrently; Insert and Delete require exclusive access.
type Tree[V any] struct {
	root *node[V]
}

// hashPrio derives a node priority from the key bits (splitmix64 finisher).
func hashPrio(k Key) uint64 {
	x := math.Float64bits(k.K) ^ (math.Float64bits(k.W) * 0x9E3779B97F4A7C15)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func (t *Tree[V]) pull(n *node[V]) {
	n.maxW = n.key.W
	n.size = 1
	if n.left != nil {
		n.size += n.left.size
		if n.left.maxW > n.maxW {
			n.maxW = n.left.maxW
		}
	}
	if n.right != nil {
		n.size += n.right.size
		if n.right.maxW > n.maxW {
			n.maxW = n.right.maxW
		}
	}
}

// splitLess splits into (keys < k, keys ≥ k).
func (t *Tree[V]) splitLess(n *node[V], k Key) (l, r *node[V]) {
	if n == nil {
		return nil, nil
	}
	if n.key.Less(k) {
		var rr *node[V]
		n.right, rr = t.splitLess(n.right, k)
		t.pull(n)
		return n, rr
	}
	var ll *node[V]
	ll, n.left = t.splitLess(n.left, k)
	t.pull(n)
	return ll, n
}

// splitLeq splits into (keys ≤ k, keys > k).
func (t *Tree[V]) splitLeq(n *node[V], k Key) (l, r *node[V]) {
	if n == nil {
		return nil, nil
	}
	if k.Less(n.key) {
		var ll *node[V]
		ll, n.left = t.splitLeq(n.left, k)
		t.pull(n)
		return ll, n
	}
	var rr *node[V]
	n.right, rr = t.splitLeq(n.right, k)
	t.pull(n)
	return n, rr
}

// merge joins a and b assuming every key in a precedes every key in b.
func (t *Tree[V]) merge(a, b *node[V]) *node[V] {
	if a == nil {
		return b
	}
	if b == nil {
		return a
	}
	if a.prio >= b.prio {
		a.right = t.merge(a.right, b)
		t.pull(a)
		return a
	}
	b.left = t.merge(a, b.left)
	t.pull(b)
	return b
}

// Len returns the number of entries.
func (t *Tree[V]) Len() int {
	if t.root == nil {
		return 0
	}
	return t.root.size
}

// MaxWeight returns the maximum weight stored; ok is false when empty.
func (t *Tree[V]) MaxWeight() (float64, bool) {
	if t.root == nil {
		return 0, false
	}
	return t.root.maxW, true
}

// Insert adds an entry. Inserting an existing key replaces its value.
func (t *Tree[V]) Insert(k Key, v V) {
	t.Delete(k)
	n := &node[V]{key: k, val: v, prio: hashPrio(k)}
	t.pull(n)
	l, r := t.splitLess(t.root, k)
	t.root = t.merge(t.merge(l, n), r)
}

// Delete removes the entry with key k, reporting whether it existed.
func (t *Tree[V]) Delete(k Key) bool {
	l, rest := t.splitLess(t.root, k)
	mid, r := t.splitLeq(rest, k)
	t.root = t.merge(l, r)
	return mid != nil
}

// Get returns the value stored at k.
func (t *Tree[V]) Get(k Key) (v V, ok bool) {
	n := t.root
	for n != nil {
		switch {
		case k.Less(n.key):
			n = n.left
		case n.key.Less(k):
			n = n.right
		default:
			return n.val, true
		}
	}
	return v, false
}

// PrefixReportAbove calls visit for every entry with key.K ≤ x and weight
// ≥ tau, in unspecified order, stopping early if visit returns false. It
// reports whether enumeration ran to completion.
func (t *Tree[V]) PrefixReportAbove(x, tau float64, visit func(Key, V) bool) bool {
	return t.reportDir(t.root, x, tau, visit, true)
}

// SuffixReportAbove is the mirror: entries with key.K ≥ x and weight ≥ tau.
func (t *Tree[V]) SuffixReportAbove(x, tau float64, visit func(Key, V) bool) bool {
	return t.reportDir(t.root, x, tau, visit, false)
}

func (t *Tree[V]) reportDir(n *node[V], x, tau float64, visit func(Key, V) bool, prefix bool) bool {
	if n == nil {
		return true
	}
	if n.maxW < tau {
		return true
	}
	inRange := (prefix && n.key.K <= x) || (!prefix && n.key.K >= x)
	if inRange {
		// One side is entirely in range; the other still straddles x.
		full, straddle := n.left, n.right
		if !prefix {
			full, straddle = n.right, n.left
		}
		if !t.reportAll(full, tau, visit) {
			return false
		}
		if n.key.W >= tau && !visit(n.key, n.val) {
			return false
		}
		return t.reportDir(straddle, x, tau, visit, prefix)
	}
	// Node out of range: only the side toward x can hold in-range keys.
	if prefix {
		return t.reportDir(n.left, x, tau, visit, prefix)
	}
	return t.reportDir(n.right, x, tau, visit, prefix)
}

// reportAll emits every entry of the subtree with weight ≥ tau.
func (t *Tree[V]) reportAll(n *node[V], tau float64, visit func(Key, V) bool) bool {
	if n == nil {
		return true
	}
	if n.maxW < tau {
		return true
	}
	if !t.reportAll(n.left, tau, visit) {
		return false
	}
	if n.key.W >= tau && !visit(n.key, n.val) {
		return false
	}
	return t.reportAll(n.right, tau, visit)
}

// RangeReportAbove calls visit for every entry with lo ≤ key.K ≤ hi and
// weight ≥ tau, in unspecified order, stopping early if visit returns
// false. It reports whether enumeration ran to completion.
func (t *Tree[V]) RangeReportAbove(lo, hi, tau float64, visit func(Key, V) bool) bool {
	return t.rangeReport(t.root, lo, hi, tau, visit)
}

func (t *Tree[V]) rangeReport(n *node[V], lo, hi, tau float64, visit func(Key, V) bool) bool {
	if n == nil {
		return true
	}
	if n.maxW < tau {
		return true
	}
	switch {
	case n.key.K < lo:
		return t.rangeReport(n.right, lo, hi, tau, visit)
	case n.key.K > hi:
		return t.rangeReport(n.left, lo, hi, tau, visit)
	default:
		if !t.rangeReport(n.left, lo, hi, tau, visit) {
			return false
		}
		if n.key.W >= tau && !visit(n.key, n.val) {
			return false
		}
		return t.rangeReport(n.right, lo, hi, tau, visit)
	}
}

// RangeMax returns the heaviest entry with lo ≤ key.K ≤ hi.
func (t *Tree[V]) RangeMax(lo, hi float64) (k Key, v V, ok bool) {
	best := math.Inf(-1)
	var bestNode *node[V]
	var walk func(n *node[V])
	walk = func(n *node[V]) {
		if n == nil || n.maxW <= best {
			return
		}
		switch {
		case n.key.K < lo:
			walk(n.right)
		case n.key.K > hi:
			walk(n.left)
		default:
			if n.key.W > best {
				best, bestNode = n.key.W, n
			}
			// Both subtrees may intersect [lo, hi]; maxW pruning at the
			// recursion entry keeps the walk output-bounded.
			walk(n.left)
			walk(n.right)
		}
	}
	walk(t.root)
	if bestNode == nil {
		return k, v, false
	}
	return bestNode.key, bestNode.val, true
}

// RangeCount returns the number of entries with lo ≤ key.K ≤ hi, in
// O(log n) expected time via the size augmentation.
func (t *Tree[V]) RangeCount(lo, hi float64) int {
	return t.countLess(t.root, hi, true) - t.countLess(t.root, lo, false)
}

// countLess counts entries with key.K < x (orEqual=false) or ≤ x (true).
func (t *Tree[V]) countLess(n *node[V], x float64, orEqual bool) int {
	total := 0
	for n != nil {
		in := n.key.K < x || (orEqual && n.key.K == x)
		if in {
			total++
			if n.left != nil {
				total += n.left.size
			}
			n = n.right
		} else {
			n = n.left
		}
	}
	return total
}

// PrefixCount returns the number of entries with key.K ≤ x in O(log n)
// expected time.
func (t *Tree[V]) PrefixCount(x float64) int {
	return t.countLess(t.root, x, true)
}

// SuffixCount returns the number of entries with key.K ≥ x.
func (t *Tree[V]) SuffixCount(x float64) int {
	return t.Len() - t.countLess(t.root, x, false)
}

// PrefixMax returns the heaviest entry with key.K ≤ x.
func (t *Tree[V]) PrefixMax(x float64) (k Key, v V, ok bool) {
	return t.maxDir(x, true)
}

// SuffixMax returns the heaviest entry with key.K ≥ x.
func (t *Tree[V]) SuffixMax(x float64) (k Key, v V, ok bool) {
	return t.maxDir(x, false)
}

func (t *Tree[V]) maxDir(x float64, prefix bool) (k Key, v V, ok bool) {
	// Walk the search path for x; collect the best among the fully
	// in-range subtrees and in-range path nodes, then extract the argmax.
	var bestNode *node[V] // best in-range path node
	var bestSub *node[V]  // subtree holding the best candidate
	bestW := math.Inf(-1)
	n := t.root
	for n != nil {
		inRange := (prefix && n.key.K <= x) || (!prefix && n.key.K >= x)
		if inRange {
			full, straddle := n.left, n.right
			if !prefix {
				full, straddle = n.right, n.left
			}
			if n.key.W > bestW {
				bestW, bestNode, bestSub = n.key.W, n, nil
			}
			if full != nil && full.maxW > bestW {
				bestW, bestNode, bestSub = full.maxW, nil, full
			}
			n = straddle
			continue
		}
		if prefix {
			n = n.left
		} else {
			n = n.right
		}
	}
	if math.IsInf(bestW, -1) {
		return k, v, false
	}
	if bestSub != nil {
		bestNode = t.findMaxW(bestSub)
	}
	return bestNode.key, bestNode.val, true
}

// findMaxW descends to the node realizing the subtree's max weight.
func (t *Tree[V]) findMaxW(n *node[V]) *node[V] {
	for {
		if n.key.W == n.maxW {
			return n
		}
		if n.left != nil && n.left.maxW == n.maxW {
			n = n.left
			continue
		}
		n = n.right
	}
}

// Ascend visits every entry in key order, stopping early if visit returns
// false.
func (t *Tree[V]) Ascend(visit func(Key, V) bool) {
	t.ascend(t.root, visit)
}

func (t *Tree[V]) ascend(n *node[V], visit func(Key, V) bool) bool {
	if n == nil {
		return true
	}
	if !t.ascend(n.left, visit) {
		return false
	}
	if !visit(n.key, n.val) {
		return false
	}
	return t.ascend(n.right, visit)
}

// Height returns the tree height (0 for empty); exported for balance tests.
func (t *Tree[V]) Height() int { return height(t.root) }

func height[V any](n *node[V]) int {
	if n == nil {
		return 0
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
