package treap

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"topk/internal/wrand"
)

type entry struct {
	k, w float64
	v    int
}

func buildRandom(g *wrand.RNG, n int) (*Tree[int], []entry) {
	t := &Tree[int]{}
	ws := g.UniqueFloats(n, 1e6)
	entries := make([]entry, n)
	for i := 0; i < n; i++ {
		e := entry{k: g.Float64() * 100, w: ws[i], v: i}
		entries[i] = e
		t.Insert(Key{e.k, e.w}, e.v)
	}
	return t, entries
}

func TestInsertGetDelete(t *testing.T) {
	tr := &Tree[string]{}
	tr.Insert(Key{1, 10}, "a")
	tr.Insert(Key{2, 20}, "b")
	tr.Insert(Key{1, 30}, "c") // same K, different W: distinct entry

	if tr.Len() != 3 {
		t.Fatalf("Len = %d, want 3", tr.Len())
	}
	if v, ok := tr.Get(Key{1, 30}); !ok || v != "c" {
		t.Fatalf("Get = %q,%v", v, ok)
	}
	if _, ok := tr.Get(Key{1, 99}); ok {
		t.Fatal("Get found an absent key")
	}
	if !tr.Delete(Key{1, 10}) {
		t.Fatal("Delete of present key returned false")
	}
	if tr.Delete(Key{1, 10}) {
		t.Fatal("double Delete returned true")
	}
	if tr.Len() != 2 {
		t.Fatalf("Len after delete = %d, want 2", tr.Len())
	}
}

func TestInsertReplacesValue(t *testing.T) {
	tr := &Tree[string]{}
	tr.Insert(Key{1, 10}, "old")
	tr.Insert(Key{1, 10}, "new")
	if tr.Len() != 1 {
		t.Fatalf("Len = %d, want 1 after replace", tr.Len())
	}
	if v, _ := tr.Get(Key{1, 10}); v != "new" {
		t.Fatalf("Get = %q, want new", v)
	}
}

func TestMaxWeightAugment(t *testing.T) {
	tr := &Tree[int]{}
	if _, ok := tr.MaxWeight(); ok {
		t.Fatal("empty tree reported a max weight")
	}
	tr.Insert(Key{5, 50}, 0)
	tr.Insert(Key{1, 70}, 1)
	tr.Insert(Key{9, 60}, 2)
	if w, ok := tr.MaxWeight(); !ok || w != 70 {
		t.Fatalf("MaxWeight = %v,%v want 70,true", w, ok)
	}
	tr.Delete(Key{1, 70})
	if w, _ := tr.MaxWeight(); w != 60 {
		t.Fatalf("MaxWeight after delete = %v, want 60", w)
	}
}

func oraclePrefixAbove(entries []entry, x, tau float64) []entry {
	var out []entry
	for _, e := range entries {
		if e.k <= x && e.w >= tau {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].w < out[j].w })
	return out
}

func TestPrefixSuffixReportAboveAgainstOracle(t *testing.T) {
	g := wrand.New(11)
	tr, entries := buildRandom(g, 800)
	for trial := 0; trial < 100; trial++ {
		x := g.Float64() * 110
		tau := g.Float64() * 1e6

		var got []entry
		tr.PrefixReportAbove(x, tau, func(k Key, v int) bool {
			got = append(got, entry{k.K, k.W, v})
			return true
		})
		sort.Slice(got, func(i, j int) bool { return got[i].w < got[j].w })
		want := oraclePrefixAbove(entries, x, tau)
		if len(got) != len(want) {
			t.Fatalf("prefix x=%v tau=%v: %d items, want %d", x, tau, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("prefix mismatch at %d: %+v vs %+v", i, got[i], want[i])
			}
		}

		var gotS int
		tr.SuffixReportAbove(x, tau, func(k Key, v int) bool {
			if k.K < x || k.W < tau {
				t.Fatalf("suffix emitted out-of-range entry k=%v w=%v", k.K, k.W)
			}
			gotS++
			return true
		})
		wantS := 0
		for _, e := range entries {
			if e.k >= x && e.w >= tau {
				wantS++
			}
		}
		if gotS != wantS {
			t.Fatalf("suffix x=%v tau=%v: %d items, want %d", x, tau, gotS, wantS)
		}
	}
}

func TestReportEarlyStop(t *testing.T) {
	g := wrand.New(12)
	tr, _ := buildRandom(g, 200)
	count := 0
	complete := tr.PrefixReportAbove(200, math.Inf(-1), func(Key, int) bool {
		count++
		return count < 5
	})
	if complete {
		t.Fatal("early-stopped enumeration reported complete")
	}
	if count != 5 {
		t.Fatalf("visited %d entries, want 5", count)
	}
}

func TestPrefixSuffixMaxAgainstOracle(t *testing.T) {
	g := wrand.New(13)
	tr, entries := buildRandom(g, 500)
	for trial := 0; trial < 200; trial++ {
		x := g.Float64() * 110
		var wantP, wantS float64 = math.Inf(-1), math.Inf(-1)
		for _, e := range entries {
			if e.k <= x && e.w > wantP {
				wantP = e.w
			}
			if e.k >= x && e.w > wantS {
				wantS = e.w
			}
		}
		k, _, ok := tr.PrefixMax(x)
		if math.IsInf(wantP, -1) {
			if ok {
				t.Fatalf("PrefixMax(%v) found %v in empty range", x, k)
			}
		} else if !ok || k.W != wantP {
			t.Fatalf("PrefixMax(%v) = %v,%v want %v", x, k.W, ok, wantP)
		}
		k, _, ok = tr.SuffixMax(x)
		if math.IsInf(wantS, -1) {
			if ok {
				t.Fatalf("SuffixMax(%v) found %v in empty range", x, k)
			}
		} else if !ok || k.W != wantS {
			t.Fatalf("SuffixMax(%v) = %v,%v want %v", x, k.W, ok, wantS)
		}
	}
}

func TestAscendOrder(t *testing.T) {
	g := wrand.New(14)
	tr, entries := buildRandom(g, 300)
	var keys []Key
	tr.Ascend(func(k Key, _ int) bool {
		keys = append(keys, k)
		return true
	})
	if len(keys) != len(entries) {
		t.Fatalf("Ascend visited %d, want %d", len(keys), len(entries))
	}
	for i := 1; i < len(keys); i++ {
		if !keys[i-1].Less(keys[i]) {
			t.Fatalf("Ascend out of order at %d: %+v then %+v", i, keys[i-1], keys[i])
		}
	}
}

func TestHeightIsLogarithmic(t *testing.T) {
	g := wrand.New(15)
	tr, _ := buildRandom(g, 1<<14)
	h := tr.Height()
	// Treap expected height ~ 3 log2 n; allow generous slack.
	if h > 5*14 {
		t.Fatalf("height %d for n=2^14; treap badly unbalanced", h)
	}
}

func TestDeterministicShape(t *testing.T) {
	// Hash priorities: shape depends only on the key set, not insert order.
	keys := []Key{{3, 1}, {1, 2}, {4, 3}, {1, 5}, {5, 4}, {9, 6}, {2, 7}}
	a, b := &Tree[int]{}, &Tree[int]{}
	for i, k := range keys {
		a.Insert(k, i)
	}
	for i := len(keys) - 1; i >= 0; i-- {
		b.Insert(keys[i], i)
	}
	if a.Height() != b.Height() {
		t.Fatalf("insertion order changed tree shape: %d vs %d", a.Height(), b.Height())
	}
}

// Property: after arbitrary insert/delete interleavings the tree agrees
// with a map oracle.
func TestQuickInsertDeleteOracle(t *testing.T) {
	f := func(ops []struct {
		K   uint8
		W   uint8
		Del bool
	}) bool {
		tr := &Tree[int]{}
		oracle := map[Key]int{}
		for i, op := range ops {
			k := Key{float64(op.K % 16), float64(op.W)}
			if op.Del {
				delete(oracle, k)
				tr.Delete(k)
			} else {
				oracle[k] = i
				tr.Insert(k, i)
			}
		}
		if tr.Len() != len(oracle) {
			return false
		}
		for k, v := range oracle {
			got, ok := tr.Get(k)
			if !ok || got != v {
				return false
			}
		}
		// Augment must agree with oracle max.
		wantMax := math.Inf(-1)
		for k := range oracle {
			if k.W > wantMax {
				wantMax = k.W
			}
		}
		gotMax, ok := tr.MaxWeight()
		if len(oracle) == 0 {
			return !ok
		}
		return ok && gotMax == wantMax
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := wrand.New(16)
	tr, _ := buildRandom(g, 1000)
	wantK, _, wantOK := tr.PrefixMax(50)
	wantCount := tr.RangeCount(10, 60)

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k, _, ok := tr.PrefixMax(50)
				if ok != wantOK || k != wantK {
					t.Errorf("concurrent PrefixMax = %v,%v want %v,%v", k, ok, wantK, wantOK)
					return
				}
				if c := tr.RangeCount(10, 60); c != wantCount {
					t.Errorf("concurrent RangeCount = %d want %d", c, wantCount)
					return
				}
			}
		}()
	}
	wg.Wait()
}
