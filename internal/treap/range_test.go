package treap

import (
	"math"
	"testing"

	"topk/internal/wrand"
)

func TestRangeReportAboveAgainstOracle(t *testing.T) {
	g := wrand.New(21)
	tr, entries := buildRandom(g, 700)
	for trial := 0; trial < 150; trial++ {
		lo := g.Float64() * 110
		hi := lo + g.Float64()*40
		tau := g.Float64() * 1e6

		got := map[float64]bool{}
		tr.RangeReportAbove(lo, hi, tau, func(k Key, _ int) bool {
			if k.K < lo || k.K > hi || k.W < tau {
				t.Fatalf("emitted out-of-range entry %+v", k)
			}
			got[k.W] = true
			return true
		})
		want := 0
		for _, e := range entries {
			if e.k >= lo && e.k <= hi && e.w >= tau {
				want++
				if !got[e.w] {
					t.Fatalf("missing entry k=%v w=%v for [%v,%v] tau=%v", e.k, e.w, lo, hi, tau)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("[%v,%v] tau=%v: reported %d, want %d", lo, hi, tau, len(got), want)
		}
	}
}

func TestRangeMaxAgainstOracle(t *testing.T) {
	g := wrand.New(22)
	tr, entries := buildRandom(g, 600)
	for trial := 0; trial < 200; trial++ {
		lo := g.Float64() * 110
		hi := lo + g.Float64()*30
		want := math.Inf(-1)
		for _, e := range entries {
			if e.k >= lo && e.k <= hi && e.w > want {
				want = e.w
			}
		}
		k, _, ok := tr.RangeMax(lo, hi)
		if math.IsInf(want, -1) {
			if ok {
				t.Fatalf("[%v,%v]: found max %v in empty range", lo, hi, k.W)
			}
			continue
		}
		if !ok || k.W != want {
			t.Fatalf("[%v,%v]: max (%v,%v), want %v", lo, hi, k.W, ok, want)
		}
	}
}

func TestRangeCountAgainstOracle(t *testing.T) {
	g := wrand.New(23)
	tr, entries := buildRandom(g, 500)
	probes := [][2]float64{{0, 200}, {50, 50}, {-10, -5}, {99.9, 100.1}}
	for trial := 0; trial < 100; trial++ {
		lo := g.Float64() * 110
		probes = append(probes, [2]float64{lo, lo + g.Float64()*25})
	}
	for _, pr := range probes {
		lo, hi := pr[0], pr[1]
		want := 0
		for _, e := range entries {
			if e.k >= lo && e.k <= hi {
				want++
			}
		}
		if got := tr.RangeCount(lo, hi); got != want {
			t.Fatalf("RangeCount(%v,%v) = %d, want %d", lo, hi, got, want)
		}
	}
}

func TestRangeCountWithDuplicateKeys(t *testing.T) {
	tr := &Tree[int]{}
	// Five entries at K=5 (distinct weights), two elsewhere.
	for i := 0; i < 5; i++ {
		tr.Insert(Key{5, float64(i)}, i)
	}
	tr.Insert(Key{1, 10}, 0)
	tr.Insert(Key{9, 11}, 0)
	if got := tr.RangeCount(5, 5); got != 5 {
		t.Fatalf("RangeCount(5,5) = %d, want 5", got)
	}
	if got := tr.RangeCount(1, 9); got != 7 {
		t.Fatalf("RangeCount(1,9) = %d, want 7", got)
	}
	if got := tr.RangeCount(5.1, 8.9); got != 0 {
		t.Fatalf("RangeCount(5.1,8.9) = %d, want 0", got)
	}
	count := 0
	tr.RangeReportAbove(5, 5, math.Inf(-1), func(Key, int) bool { count++; return true })
	if count != 5 {
		t.Fatalf("RangeReportAbove(5,5) visited %d, want 5", count)
	}
}

func TestRangeEarlyStop(t *testing.T) {
	g := wrand.New(24)
	tr, _ := buildRandom(g, 300)
	count := 0
	complete := tr.RangeReportAbove(0, 200, math.Inf(-1), func(Key, int) bool {
		count++
		return count < 6
	})
	if complete || count != 6 {
		t.Fatalf("early stop: complete=%v count=%d", complete, count)
	}
}
