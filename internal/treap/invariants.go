package treap

import "fmt"

// CheckInvariants verifies the treap's structural invariants — key order,
// heap order on priorities, and the size and max-weight augmentations —
// returning the first violation found. Intended for tests and fuzzing;
// O(n).
func (t *Tree[V]) CheckInvariants() error {
	_, _, err := check(t.root)
	return err
}

func check[V any](n *node[V]) (size int, maxW float64, err error) {
	if n == nil {
		return 0, 0, nil
	}
	ls, lm, err := check(n.left)
	if err != nil {
		return 0, 0, err
	}
	rs, rm, err := check(n.right)
	if err != nil {
		return 0, 0, err
	}
	if n.left != nil {
		if !n.left.key.Less(n.key) {
			return 0, 0, fmt.Errorf("treap: key order violated: left %v !< %v", n.left.key, n.key)
		}
		if n.left.prio > n.prio {
			return 0, 0, fmt.Errorf("treap: heap order violated at %v", n.key)
		}
	}
	if n.right != nil {
		if !n.key.Less(n.right.key) {
			return 0, 0, fmt.Errorf("treap: key order violated: %v !< right %v", n.key, n.right.key)
		}
		if n.right.prio > n.prio {
			return 0, 0, fmt.Errorf("treap: heap order violated at %v", n.key)
		}
	}
	size = 1 + ls + rs
	if n.size != size {
		return 0, 0, fmt.Errorf("treap: size augment at %v is %d, want %d", n.key, n.size, size)
	}
	maxW = n.key.W
	if n.left != nil && lm > maxW {
		maxW = lm
	}
	if n.right != nil && rm > maxW {
		maxW = rm
	}
	if n.maxW != maxW {
		return 0, 0, fmt.Errorf("treap: maxW augment at %v is %v, want %v", n.key, n.maxW, maxW)
	}
	return size, maxW, nil
}
