package topk

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// This file is the bulk-ingest conformance suite: the batch update path
// (InsertBatch/DeleteBatch) must be observationally identical to the
// single-item path — same answers, same error strings, same atomicity —
// on every engine kind, under both maintenance policies, sharded or not.

// wireItems generates m deterministic /ingest wire-format items for one
// registered problem, with weights far above every build-generated one.
func wireItems(t *testing.T, name string, m int) []json.RawMessage {
	t.Helper()
	out := make([]json.RawMessage, m)
	for i := 0; i < m; i++ {
		w := 2e6 + float64(i)
		x := float64(i%37) * 2.6
		y := float64(i%23) * 4.1
		z := float64(i%11) * 7.9
		var s string
		switch name {
		case "interval":
			s = fmt.Sprintf(`{"lo": %g, "hi": %g, "weight": %g}`, x, x+10, w)
		case "range":
			s = fmt.Sprintf(`{"pos": %g, "weight": %g}`, x, w)
		case "ortho", "circular":
			s = fmt.Sprintf(`{"coords": [%g, %g], "weight": %g}`, x, y, w)
		case "halfspace":
			s = fmt.Sprintf(`{"coords": [%g, %g, %g], "weight": %g}`, x, y, z, w)
		case "dominance":
			s = fmt.Sprintf(`{"x": %g, "y": %g, "z": %g, "weight": %g}`, x, y, z, w)
		case "enclosure":
			s = fmt.Sprintf(`{"x1": %g, "x2": %g, "y1": %g, "y2": %g, "weight": %g}`, x, x+4, y, y+6, w)
		case "halfplane":
			s = fmt.Sprintf(`{"x": %g, "y": %g, "weight": %g}`, x, y, w)
		default:
			t.Fatalf("no wire item generator for problem %q", name)
		}
		out[i] = json.RawMessage(s)
	}
	return out
}

// decodeAll runs a served index's own item decoder over the wire batch.
func decodeAll(t *testing.T, sv Served, raw []json.RawMessage) []any {
	t.Helper()
	items := make([]any, len(raw))
	for i, r := range raw {
		it, err := sv.DecodeItem(r)
		if err != nil {
			t.Fatalf("decoding %s: %v", r, err)
		}
		items[i] = it
	}
	return items
}

// TestConformanceBatchIngest checks, for every registered problem, that
// bulk ingest through a sharded index is observationally byte-identical
// to the same batch through an unsharded one: same answers, same delete
// counts, same final sizes.
func TestConformanceBatchIngest(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for _, pol := range []MaintenancePolicy{PolicyLogarithmic, PolicyBuffered} {
			t.Run(fmt.Sprintf("%s/%v", spec.Name, pol), func(t *testing.T) {
				opts := []Option{WithUpdates(), WithMaintenancePolicy(pol)}
				single, err := spec.Build(confN, confSeed, opts...)
				if err != nil {
					t.Fatal(err)
				}
				sharded, err := spec.BuildSharded(confN, 3, confSeed, opts...)
				if err != nil {
					t.Fatal(err)
				}

				raw := wireItems(t, spec.Name, 60)
				if err := single.InsertBatch(decodeAll(t, single, raw)); err != nil {
					t.Fatalf("unsharded InsertBatch: %v", err)
				}
				if err := sharded.InsertBatch(decodeAll(t, sharded, raw)); err != nil {
					t.Fatalf("sharded InsertBatch: %v", err)
				}
				if single.Len() != confN+60 || sharded.Len() != confN+60 {
					t.Fatalf("Len after batch: unsharded %d, sharded %d, want %d", single.Len(), sharded.Len(), confN+60)
				}

				qs := single.GenQueries(8, confQSeed)
				if got, want := answersOf(sharded, qs), answersOf(single, qs); !reflect.DeepEqual(got, want) {
					t.Fatal("sharded batch ingest diverges from unsharded")
				}

				// Batch delete: half the new weights, one duplicate in the
				// request, and one weight that was never inserted.
				dels := []float64{2e6, 2e6 + 1, 2e6 + 2, 2e6 + 2, 2e6 - 0.5}
				for i := 0; i < 27; i++ {
					dels = append(dels, 2e6+30+float64(i))
				}
				n1, err := single.DeleteBatch(dels)
				if err != nil {
					t.Fatalf("unsharded DeleteBatch: %v", err)
				}
				n2, err := sharded.DeleteBatch(dels)
				if err != nil {
					t.Fatalf("sharded DeleteBatch: %v", err)
				}
				if n1 != 30 || n2 != 30 {
					t.Fatalf("DeleteBatch found %d unsharded, %d sharded, want 30", n1, n2)
				}
				if got, want := answersOf(sharded, qs), answersOf(single, qs); !reflect.DeepEqual(got, want) {
					t.Fatal("sharded batch delete diverges from unsharded")
				}
			})
		}
	}
}

// TestBatchMatchesSingleUpdates drives two identical overlay indexes —
// one through single Insert/Delete calls, one through the batch path —
// and requires identical answers and identical live sets afterwards.
func TestBatchMatchesSingleUpdates(t *testing.T) {
	for _, pol := range []MaintenancePolicy{PolicyLogarithmic, PolicyBuffered} {
		t.Run(pol.String(), func(t *testing.T) {
			mk := func() *IntervalIndex[int] {
				base := make([]IntervalItem[int], 32)
				for i := range base {
					base[i] = IntervalItem[int]{Lo: float64(i), Hi: float64(i + 8), Weight: float64(i) + 0.25, Data: i}
				}
				ix, err := NewIntervalIndex(base, WithUpdates(), WithReduction(WorstCase),
					WithBlockSize(4), WithMaintenancePolicy(pol))
				if err != nil {
					t.Fatal(err)
				}
				return ix
			}
			fresh := make([]IntervalItem[int], 90)
			for i := range fresh {
				fresh[i] = IntervalItem[int]{Lo: float64(i) * 0.7, Hi: float64(i)*0.7 + 5, Weight: 500 + float64(i), Data: 500 + i}
			}

			one, batch := mk(), mk()
			for _, it := range fresh {
				if err := one.Insert(it); err != nil {
					t.Fatal(err)
				}
			}
			if err := batch.InsertBatch(fresh); err != nil {
				t.Fatal(err)
			}
			if got, want := intervalAnswers(batch), intervalAnswers(one); !reflect.DeepEqual(got, want) {
				t.Fatal("InsertBatch answers diverge from single Inserts")
			}

			dels := []float64{500, 510, 520, 530, 999.5}
			var n1 int
			for _, w := range dels {
				if ok, err := one.Delete(w); err != nil {
					t.Fatal(err)
				} else if ok {
					n1++
				}
			}
			n2, err := batch.DeleteBatch(dels)
			if err != nil {
				t.Fatal(err)
			}
			if n1 != n2 || n1 != 4 {
				t.Fatalf("deletes found: single %d, batch %d, want 4", n1, n2)
			}
			if got, want := intervalAnswers(batch), intervalAnswers(one); !reflect.DeepEqual(got, want) {
				t.Fatal("DeleteBatch answers diverge from single Deletes")
			}

			liveOf := func(ix *IntervalIndex[int]) []float64 {
				var ws []float64
				for _, it := range ix.Items() {
					ws = append(ws, it.Weight)
				}
				sort.Float64s(ws)
				return ws
			}
			if got, want := liveOf(batch), liveOf(one); !reflect.DeepEqual(got, want) {
				t.Fatal("live weight sets diverge between batch and single paths")
			}
		})
	}
}

// TestBatchErrorStringsMatchSingle pins the conformance rule that every
// ingest path — single or batch, sharded or not — rejects the same bad
// input with the same error string, and that a rejected batch inserts
// nothing.
func TestBatchErrorStringsMatchSingle(t *testing.T) {
	base := make([]IntervalItem[int], 16)
	for i := range base {
		base[i] = IntervalItem[int]{Lo: float64(i), Hi: float64(i + 4), Weight: float64(i) + 0.5, Data: i}
	}
	mkOne := func() *IntervalIndex[int] {
		ix, err := NewIntervalIndex(base, WithUpdates(), WithReduction(WorstCase))
		if err != nil {
			t.Fatal(err)
		}
		return ix
	}
	mkSharded := func() *ShardedIntervalIndex[int] {
		s, err := NewShardedIntervalIndex(base, 3, WithUpdates(), WithReduction(WorstCase))
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	dup := IntervalItem[int]{Lo: 1, Hi: 2, Weight: 3.5, Data: 99} // weight 3.5 is live
	okItem := IntervalItem[int]{Lo: 1, Hi: 2, Weight: 100, Data: 100}

	errOf := func(err error) string {
		if err == nil {
			t.Fatal("expected an error, got nil")
		}
		return err.Error()
	}
	want := errOf(mkOne().Insert(dup))
	if !strings.Contains(want, "duplicate weight 3.5") {
		t.Fatalf("single insert error = %q, want a duplicate-weight error", want)
	}
	if got := errOf(mkOne().InsertBatch([]IntervalItem[int]{okItem, dup})); got != want {
		t.Fatalf("unsharded batch error %q, single error %q", got, want)
	}
	if got := errOf(mkSharded().Insert(dup)); got != want {
		t.Fatalf("sharded single error %q, unsharded single error %q", got, want)
	}
	if got := errOf(mkSharded().InsertBatch([]IntervalItem[int]{okItem, dup})); got != want {
		t.Fatalf("sharded batch error %q, unsharded single error %q", got, want)
	}
	// A weight duplicated inside the batch itself reports the same way.
	inBatch := []IntervalItem[int]{okItem, {Lo: 0, Hi: 1, Weight: 100, Data: 101}}
	wantIn := fmt.Sprintf("topk: duplicate weight %v", 100.0)
	if got := errOf(mkOne().InsertBatch(inBatch)); got != wantIn {
		t.Fatalf("in-batch dup error %q, want %q", got, wantIn)
	}
	if got := errOf(mkSharded().InsertBatch(inBatch)); got != wantIn {
		t.Fatalf("sharded in-batch dup error %q, want %q", got, wantIn)
	}
	// Invalid geometry: same validation error either way.
	bad := IntervalItem[int]{Lo: 9, Hi: 2, Weight: 200}
	wantBad := errOf(mkOne().Insert(bad))
	if got := errOf(mkOne().InsertBatch([]IntervalItem[int]{okItem, bad})); got != wantBad {
		t.Fatalf("batch invalid-item error %q, single %q", got, wantBad)
	}
	if got := errOf(mkSharded().InsertBatch([]IntervalItem[int]{okItem, bad})); got != wantBad {
		t.Fatalf("sharded batch invalid-item error %q, single %q", got, wantBad)
	}

	// Atomicity: the rejected batches above never inserted their valid
	// members.
	one, sh := mkOne(), mkSharded()
	_ = one.InsertBatch([]IntervalItem[int]{okItem, dup})
	_ = sh.InsertBatch([]IntervalItem[int]{okItem, dup})
	if one.Len() != len(base) || sh.Len() != len(base) {
		t.Fatalf("rejected batch mutated the index: Len %d / %d, want %d", one.Len(), sh.Len(), len(base))
	}

	// Static builds refuse the batch path with the usual static error.
	st, err := NewIntervalIndex(base, WithReduction(WorstCase))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.InsertBatch([]IntervalItem[int]{okItem}); err == nil || !strings.Contains(err.Error(), "static") {
		t.Fatalf("static InsertBatch error = %v, want static-index error", err)
	}
	if _, err := st.DeleteBatch([]float64{0.5}); err == nil || !strings.Contains(err.Error(), "static") {
		t.Fatalf("static DeleteBatch error = %v, want static-index error", err)
	}
}
