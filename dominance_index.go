package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/dominance"
	"topk/internal/em"
	"topk/internal/snap"
)

// DominanceItem is one weighted point in ℝ³ with an arbitrary payload —
// the paper's hotel example: (price, distance, 10−security) with rating
// as the weight.
type DominanceItem[T any] struct {
	X, Y, Z float64
	Weight  float64
	Data    T
}

// dominanceProblem is the engine descriptor for top-k 3D dominance.
func dominanceProblem[T any]() problem[dominance.Pt3, dominance.Pt3, DominanceItem[T]] {
	return problem[dominance.Pt3, dominance.Pt3, DominanceItem[T]]{
		name:   "dominance",
		match:  dominance.Match,
		lambda: dominance.Lambda,
		pri: func(tr *em.Tracker) core.PrioritizedFactory[dominance.Pt3, dominance.Pt3] {
			return dominance.NewPrioritizedFactory(tr)
		},
		max: func(tr *em.Tracker) core.MaxFactory[dominance.Pt3, dominance.Pt3] {
			return dominance.NewMaxFactory(tr)
		},
		validate: func(it DominanceItem[T]) error {
			if math.IsNaN(it.X) || math.IsNaN(it.Y) || math.IsNaN(it.Z) {
				return fmt.Errorf("topk: NaN coordinate in (%v, %v, %v)", it.X, it.Y, it.Z)
			}
			return nil
		},
		weight: func(it DominanceItem[T]) float64 { return it.Weight },
		toCore: func(it DominanceItem[T]) core.Item[dominance.Pt3] {
			return core.Item[dominance.Pt3]{Value: dominance.Pt3{X: it.X, Y: it.Y, Z: it.Z}, Weight: it.Weight}
		},
		fromCore: func(ci core.Item[dominance.Pt3], st DominanceItem[T]) DominanceItem[T] {
			st.X, st.Y, st.Z, st.Weight = ci.Value.X, ci.Value.Y, ci.Value.Z, ci.Weight
			return st
		},
		describe: func(q dominance.Pt3, k int) string {
			return fmt.Sprintf("dominate (%v,%v,%v) k=%d", q.X, q.Y, q.Z, k)
		},
	}
}

// DominanceIndex answers top-k 3D dominance queries (the paper's
// Theorem 6): given a corner (x, y, z), return the k heaviest points p
// with p.X ≤ x, p.Y ≤ y and p.Z ≤ z.
type DominanceIndex[T any] struct {
	facade[dominance.Pt3, dominance.Pt3, DominanceItem[T]]
}

// NewDominanceIndex builds an index over items (weights distinct). With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewDominanceIndex[T any](items []DominanceItem[T], opts ...Option) (*DominanceIndex[T], error) {
	eng, err := newEngine(dominanceProblem[T](), items, opts)
	if err != nil {
		return nil, err
	}
	return &DominanceIndex[T]{newFacade(eng)}, nil
}

// TopK returns the k heaviest points dominated by (x, y, z), heaviest
// first.
func (ix *DominanceIndex[T]) TopK(x, y, z float64, k int) []DominanceItem[T] {
	return ix.eng.TopK(dominance.Pt3{X: x, Y: y, Z: z}, k)
}

// ReportAbove streams every point dominated by (x, y, z) with weight ≥
// tau; return false from visit to stop early.
func (ix *DominanceIndex[T]) ReportAbove(x, y, z, tau float64, visit func(DominanceItem[T]) bool) {
	ix.eng.ReportAbove(dominance.Pt3{X: x, Y: y, Z: z}, tau, visit)
}

// Max returns the heaviest point dominated by (x, y, z) (a top-1 query).
func (ix *DominanceIndex[T]) Max(x, y, z float64) (DominanceItem[T], bool) {
	return ix.eng.Max(dominance.Pt3{X: x, Y: y, Z: z})
}

// QueryBatch answers one top-k dominance query per CornerQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *DominanceIndex[T]) QueryBatch(qs []CornerQuery, k int, parallelism int) []BatchResult[DominanceItem[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract (see
// IntervalIndex.QueryBatchCtx); a zero ctx is exactly QueryBatch.
func (ix *DominanceIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []CornerQuery, k int, parallelism int) []BatchResult[DominanceItem[T]] {
	corners := make([]dominance.Pt3, len(qs))
	for i, q := range qs {
		corners[i] = dominance.Pt3{X: q.X, Y: q.Y, Z: q.Z}
	}
	return ix.eng.QueryBatchCtx(ctx, corners, k, parallelism)
}

// RestoreDominanceIndex reconstructs a dominance index from a snapshot
// stream written by Snapshot; see RestoreIntervalIndex for the
// warm-start contract shared by all Restore constructors.
func RestoreDominanceIndex[T any](r io.Reader, opts ...Option) (*DominanceIndex[T], error) {
	eng, err := restoreEngine(func(snap.Header) (problem[dominance.Pt3, dominance.Pt3, DominanceItem[T]], error) {
		return dominanceProblem[T](), nil
	}, r, opts)
	if err != nil {
		return nil, err
	}
	return &DominanceIndex[T]{newFacade(eng)}, nil
}
