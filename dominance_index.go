package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/dominance"
	"topk/internal/em"
)

// DominanceItem is one weighted point in ℝ³ with an arbitrary payload —
// the paper's hotel example: (price, distance, 10−security) with rating
// as the weight.
type DominanceItem[T any] struct {
	X, Y, Z float64
	Weight  float64
	Data    T
}

// DominanceIndex answers top-k 3D dominance queries (the paper's
// Theorem 6): given a corner (x, y, z), return the k heaviest points p
// with p.X ≤ x, p.Y ≤ y and p.Z ≤ z.
type DominanceIndex[T any] struct {
	opts    Options
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[dominance.Pt3, dominance.Pt3]
	dyn     updatableTopK[dominance.Pt3, dominance.Pt3] // non-nil when built with WithUpdates
	pri     core.Prioritized[dominance.Pt3, dominance.Pt3]
	data    map[float64]T
	n       int
}

// NewDominanceIndex builds an index over items (weights distinct). With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewDominanceIndex[T any](items []DominanceItem[T], opts ...Option) (*DominanceIndex[T], error) {
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[dominance.Pt3], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		cores[i] = core.Item[dominance.Pt3]{Value: dominance.Pt3{X: it.X, Y: it.Y, Z: it.Z}, Weight: it.Weight}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	ix := &DominanceIndex[T]{opts: o, tracker: tracker, data: data, n: len(items)}
	if o.updates {
		dyn, err := newOverlay(cores, dominance.Match,
			dominance.NewPrioritizedFactory(tracker),
			dominance.NewMaxFactory(tracker),
			dominance.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	} else {
		t, err := buildTopK(cores, dominance.Match,
			dominance.NewPrioritizedFactory(tracker),
			dominance.NewMaxFactory(tracker),
			dominance.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk = t
	}
	ix.pri = prioritizedOf(ix.topk)
	ix.ob = newIndexObs("dominance", o, tracker)
	ix.ob.observeShape(ix.n, ix.dyn)
	return ix, nil
}

// Len returns the number of indexed points.
func (ix *DominanceIndex[T]) Len() int { return ix.n }

func (ix *DominanceIndex[T]) wrap(it core.Item[dominance.Pt3]) DominanceItem[T] {
	return DominanceItem[T]{X: it.Value.X, Y: it.Value.Y, Z: it.Value.Z, Weight: it.Weight, Data: ix.data[it.Weight]}
}

// TopK returns the k heaviest points dominated by (x, y, z), heaviest
// first.
func (ix *DominanceIndex[T]) TopK(x, y, z float64, k int) []DominanceItem[T] {
	t0, before := ix.ob.start()
	res := ix.topk.TopK(dominance.Pt3{X: x, Y: y, Z: z}, k)
	ix.ob.done(t0, before, func() string { return fmt.Sprintf("dominate (%v,%v,%v) k=%d", x, y, z, k) })
	out := make([]DominanceItem[T], len(res))
	for i, it := range res {
		out[i] = ix.wrap(it)
	}
	return out
}

// ReportAbove streams every point dominated by (x, y, z) with weight ≥
// tau; return false from visit to stop early.
func (ix *DominanceIndex[T]) ReportAbove(x, y, z, tau float64, visit func(DominanceItem[T]) bool) {
	ix.pri.ReportAbove(dominance.Pt3{X: x, Y: y, Z: z}, tau, func(it core.Item[dominance.Pt3]) bool {
		return visit(ix.wrap(it))
	})
}

// Max returns the heaviest point dominated by (x, y, z) (a top-1 query).
func (ix *DominanceIndex[T]) Max(x, y, z float64) (DominanceItem[T], bool) {
	it, ok := maxOfTopK(ix.topk, dominance.Pt3{X: x, Y: y, Z: z})
	if !ok {
		return DominanceItem[T]{}, false
	}
	return ix.wrap(it), true
}

// Insert adds a point. Only indexes built with WithUpdates support
// updates; others return an error.
func (ix *DominanceIndex[T]) Insert(item DominanceItem[T]) error {
	if ix.dyn == nil {
		return errStatic(ix.opts.reduction)
	}
	if math.IsNaN(item.X) || math.IsNaN(item.Y) || math.IsNaN(item.Z) {
		return fmt.Errorf("topk: NaN coordinate in (%v, %v, %v)", item.X, item.Y, item.Z)
	}
	if math.IsNaN(item.Weight) || math.IsInf(item.Weight, 0) {
		return fmt.Errorf("topk: non-finite weight %v", item.Weight)
	}
	if _, dup := ix.data[item.Weight]; dup {
		return fmt.Errorf("topk: duplicate weight %v", item.Weight)
	}
	ci := core.Item[dominance.Pt3]{Value: dominance.Pt3{X: item.X, Y: item.Y, Z: item.Z}, Weight: item.Weight}
	if err := ix.dyn.Insert(ci); err != nil {
		return err
	}
	ix.data[item.Weight] = item.Data
	ix.n++
	ix.ob.observeShape(ix.n, ix.dyn)
	return nil
}

// Delete removes the point with the given weight, reporting whether it
// was present. Only indexes built with WithUpdates support updates.
func (ix *DominanceIndex[T]) Delete(weight float64) (bool, error) {
	if ix.dyn == nil {
		return false, errStatic(ix.opts.reduction)
	}
	if !ix.dyn.DeleteWeight(weight) {
		return false, nil
	}
	delete(ix.data, weight)
	ix.n--
	ix.ob.observeShape(ix.n, ix.dyn)
	return true, nil
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *DominanceIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters.
func (ix *DominanceIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// QueryBatch answers one top-k dominance query per CornerQuery on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0).
// Each query runs in its own cold tracker view, so per-query Stats are
// independent of parallelism; see IntervalIndex.QueryBatch for the full
// contract.
func (ix *DominanceIndex[T]) QueryBatch(qs []CornerQuery, k int, parallelism int) []BatchResult[DominanceItem[T]] {
	return runBatch(ix.tracker, ix.ob, qs, parallelism, func(q CornerQuery) []DominanceItem[T] {
		return ix.TopK(q.X, q.Y, q.Z, k)
	})
}

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (ix *DominanceIndex[T]) WriteMetrics(w io.Writer) error { return ix.ob.writeMetrics(w) }
