// Command topk-demo exercises the public API end to end on the paper's
// two motivating scenarios — the dating site (2D point enclosure, §1.4)
// and the hotel search (3D dominance, §1.4) — and prints results plus the
// simulated I/O cost of each query.
//
// Usage:
//
//	topk-demo [-n 20000] [-k 10] [-reduction expected|worstcase|binarysearch|fullscan]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"topk"
	"topk/internal/wrand"
)

func main() {
	var (
		n    = flag.Int("n", 20000, "dataset size")
		k    = flag.Int("k", 10, "results per query")
		red  = flag.String("reduction", "expected", "expected|worstcase|binarysearch|fullscan")
		seed = flag.Uint64("seed", 1, "workload seed")
	)
	flag.Parse()

	var r topk.Reduction
	switch strings.ToLower(*red) {
	case "expected":
		r = topk.Expected
	case "worstcase":
		r = topk.WorstCase
	case "binarysearch":
		r = topk.BinarySearch
	case "fullscan":
		r = topk.FullScan
	default:
		fmt.Fprintf(os.Stderr, "topk-demo: unknown reduction %q\n", *red)
		os.Exit(2)
	}

	g := wrand.New(*seed)

	// ---- Scenario 1: the dating site (top-k point enclosure) ----------
	fmt.Printf("== Dating site: %d profiles, reduction=%v ==\n", *n, r)
	salaries := g.UniqueFloats(*n, 250000)
	profiles := make([]topk.RectItem[string], *n)
	for i := range profiles {
		age := 18 + g.Float64()*40
		height := 150 + g.Float64()*40
		profiles[i] = topk.RectItem[string]{
			X1: age, X2: age + 2 + g.ExpFloat64()*10, // preferred age window
			Y1: height, Y2: height + 2 + g.ExpFloat64()*15, // preferred height window
			Weight: 30000 + salaries[i],
			Data:   fmt.Sprintf("member-%05d", i),
		}
	}
	dating, err := topk.NewEnclosureIndex(profiles, topk.WithReduction(r), topk.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "topk-demo:", err)
		os.Exit(1)
	}
	myAge, myHeight := 29.0, 168.0
	dating.ResetStats()
	matches := dating.TopK(myAge, myHeight, *k)
	st := dating.Stats()
	fmt.Printf("query: members whose preferred ranges contain age=%.0f height=%.0fcm, by salary\n", myAge, myHeight)
	for i, m := range matches {
		fmt.Printf("  %2d. %s  salary=$%.0f  wants age [%.0f,%.0f], height [%.0f,%.0f]\n",
			i+1, m.Data, m.Weight, m.X1, m.X2, m.Y1, m.Y2)
	}
	fmt.Printf("cost: %d simulated I/Os (space %d blocks)\n\n", st.IOs(), st.Blocks)

	// ---- Scenario 2: hotel search (top-k 3D dominance) ----------------
	fmt.Printf("== Hotel search: %d hotels, reduction=%v ==\n", *n, r)
	ratings := g.UniqueFloats(*n, 5)
	hotels := make([]topk.DominanceItem[string], *n)
	for i := range hotels {
		hotels[i] = topk.DominanceItem[string]{
			X:      40 + g.ExpFloat64()*120, // price $/night
			Y:      g.ExpFloat64() * 8,      // km from center
			Z:      g.Float64() * 10,        // 10 - security rating
			Weight: 5 + ratings[i],          // guest rating
			Data:   fmt.Sprintf("hotel-%05d", i),
		}
	}
	hotelIx, err := topk.NewDominanceIndex(hotels, topk.WithReduction(r), topk.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "topk-demo:", err)
		os.Exit(1)
	}
	maxPrice, maxDist, minSec := 150.0, 5.0, 6.0
	hotelIx.ResetStats()
	best := hotelIx.TopK(maxPrice, maxDist, 10-minSec, *k)
	st = hotelIx.Stats()
	fmt.Printf("query: best-rated hotels with price ≤ $%.0f, distance ≤ %.0fkm, security ≥ %.0f\n",
		maxPrice, maxDist, minSec)
	for i, h := range best {
		fmt.Printf("  %2d. %s  rating=%.2f  $%.0f/night, %.1fkm, security %.1f\n",
			i+1, h.Data, h.Weight-5, h.X, h.Y, 10-h.Z)
	}
	fmt.Printf("cost: %d simulated I/Os (space %d blocks)\n", st.IOs(), st.Blocks)
}
