// Command topk-csv builds a top-k index over a CSV dataset and answers
// queries from the command line — the "bring your own data" entry point.
//
// Dataset kinds and their formats (optional header, '#' comments,
// optional trailing label column; weights must be distinct):
//
//	intervals  lo,hi,weight[,label]        query args: <stab point>
//	points     pos,weight[,label]          query args: <lo> <hi>
//	rects      x1,x2,y1,y2,weight[,label]  query args: <x> <y>
//	points3d   x,y,z,weight[,label]        query args: <x> <y> <z>
//
// Example:
//
//	topk-csv -kind rects -file profiles.csv -k 10 29 168
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"topk"
	"topk/internal/csvload"
)

func main() {
	var (
		kind = flag.String("kind", "", "dataset kind: intervals|points|rects|points3d")
		file = flag.String("file", "", "CSV file ('-' for stdin)")
		k    = flag.Int("k", 10, "results per query")
		red  = flag.String("reduction", "expected", "expected|worstcase|binarysearch|fullscan")
		seed = flag.Uint64("seed", 1, "structure seed")
	)
	flag.Parse()
	if *kind == "" || *file == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: topk-csv -kind KIND -file FILE [-k K] [-reduction R] <query args...>")
		fmt.Fprintf(os.Stderr, "kinds: %v\n", csvload.Kinds())
		os.Exit(2)
	}

	var r topk.Reduction
	switch strings.ToLower(*red) {
	case "expected":
		r = topk.Expected
	case "worstcase":
		r = topk.WorstCase
	case "binarysearch":
		r = topk.BinarySearch
	case "fullscan":
		r = topk.FullScan
	default:
		fmt.Fprintf(os.Stderr, "topk-csv: unknown reduction %q\n", *red)
		os.Exit(2)
	}

	in := os.Stdin
	if *file != "-" {
		f, err := os.Open(*file)
		if err != nil {
			fmt.Fprintln(os.Stderr, "topk-csv:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	}
	ds, err := csvload.Read(in, csvload.Kind(*kind))
	if err != nil {
		fmt.Fprintln(os.Stderr, "topk-csv:", err)
		os.Exit(1)
	}

	args := make([]float64, flag.NArg())
	for i, a := range flag.Args() {
		v, err := strconv.ParseFloat(a, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topk-csv: query arg %q: %v\n", a, err)
			os.Exit(2)
		}
		args[i] = v
	}

	start := time.Now()
	res, err := ds.Query(args, *k, topk.WithReduction(r), topk.WithSeed(*seed))
	if err != nil {
		fmt.Fprintln(os.Stderr, "topk-csv:", err)
		os.Exit(1)
	}
	elapsed := time.Since(start)

	fmt.Printf("# %d records, kind=%s, reduction=%v, query=%v, k=%d (build+query %v)\n",
		ds.Len(), *kind, r, args, *k, elapsed.Round(time.Millisecond))
	for i, row := range res {
		label := row.Label
		if label == "" {
			label = "-"
		}
		fmt.Printf("%2d. weight=%-12g %-20s %s\n", i+1, row.Weight, label, row.Desc)
	}
	if len(res) == 0 {
		fmt.Println("(no matches)")
	}
}
