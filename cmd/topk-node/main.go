// Command topk-node is the cluster serving binary: one executable, two
// roles.
//
// As a coordinator it owns a partitioned snapshot directory, hands the
// cluster geometry to nodes (GET /cluster/config), ships shard files for
// bootstrap (GET /snapshot/...), and answers topk-serve-compatible POST
// /query batches by fanning out to replica nodes with hedged reads:
//
//	topk-node -coordinator -addr :18110 -snapshot-dir snap \
//	    -nodes localhost:18111,localhost:18112,localhost:18113 -replicas 2
//
// As a node it bootstraps from the coordinator — fetch config, compute
// the shards it owns under rendezvous hashing, download exactly those
// snapshot files, restore each as a standalone one-shard index — then
// serves POST /cluster/query:
//
//	topk-node -addr :18111 -fetch http://localhost:18110
//
// The coordinator's /readyz turns 200 once every shard has a live
// owner. Replication, hedging, and the degradation ladder are
// documented in DESIGN.md §16.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"time"

	"topk"
	"topk/internal/cluster"
)

func main() {
	log.SetFlags(0)
	var (
		addr        = flag.String("addr", ":18110", "listen address")
		coordinator = flag.Bool("coordinator", false, "run as the cluster coordinator")
		snapDir     = flag.String("snapshot-dir", "", "coordinator: partitioned snapshot directory to serve")
		nodes       = flag.String("nodes", "", "coordinator: comma-separated node IDs (host:port, dialed as http://ID)")
		replicas    = flag.Int("replicas", 2, "coordinator: replication factor R (owners per shard)")
		hedge       = flag.Duration("hedge", 0, "coordinator: fixed hedge delay (0 = derive from live p99)")
		deadline    = flag.Duration("deadline", 0, "coordinator: default per-request deadline (0 = none)")
		ioBudget    = flag.Int64("io-budget", 0, "coordinator: default per-query per-shard I/O budget (0 = off, -1 = admission control from live p99)")
		degradeMax  = flag.Bool("degrade-max", false, "coordinator: serve exact top-1 fallback when a shard trips its limits")
		id          = flag.String("id", "", "node: cluster node ID (default: -addr without leading colon, as host:port)")
		fetch       = flag.String("fetch", "", "node: coordinator base URL to bootstrap from, e.g. http://localhost:18110")
		dir         = flag.String("dir", "", "node: directory for fetched shard files (default: temp dir)")
	)
	flag.Parse()
	if *coordinator {
		runCoordinator(*addr, *snapDir, *nodes, *replicas, *hedge, *deadline, *ioBudget, *degradeMax)
		return
	}
	runNode(*addr, *id, *fetch, *dir)
}

func runCoordinator(addr, snapDir, nodeList string, replicas int, hedge, deadline time.Duration, ioBudget int64, degradeMax bool) {
	if snapDir == "" {
		log.Fatal("coordinator needs -snapshot-dir (a partitioned snapshot; see topk-snap save)")
	}
	if nodeList == "" {
		log.Fatal("coordinator needs -nodes (comma-separated host:port node IDs)")
	}
	mf, err := topk.ReadManifest(snapDir)
	if err != nil {
		log.Fatal(err)
	}
	ids := strings.Split(nodeList, ",")
	for i := range ids {
		ids[i] = strings.TrimSpace(ids[i])
	}
	reps := make([]cluster.Replica, len(ids))
	for i, nid := range ids {
		reps[i] = cluster.NewHTTPReplica(nid, "http://"+nid, nil)
	}
	co, err := cluster.New(cluster.Config{
		Problem: mf.Problem, Shards: mf.Shards, Replication: replicas,
		HedgeDelay: hedge, Deadline: deadline, BudgetIOs: ioBudget, DegradeToMax: degradeMax,
	}, reps)
	if err != nil {
		log.Fatal(err)
	}
	srv := cluster.NewServer(co, snapDir, ids)
	log.Printf("topk-node coordinator: problem=%s shards=%d nodes=%d R=%d on %s (snapshot %s)",
		mf.Problem, mf.Shards, len(ids), co.Config().Replication, addr, snapDir)
	log.Fatal(http.ListenAndServe(addr, srv.Handler()))
}

func runNode(addr, id, fetch, dir string) {
	if fetch == "" {
		log.Fatal("node needs -fetch http://coordinator-host:port (or run with -coordinator)")
	}
	if id == "" {
		id = strings.TrimPrefix(addr, ":")
		if !strings.Contains(id, ":") {
			id = "localhost:" + id
		}
	}
	if dir == "" {
		tmp, err := os.MkdirTemp("", "topk-node-*")
		if err != nil {
			log.Fatal(err)
		}
		dir = tmp
	}
	ctx := context.Background()

	// The coordinator may still be coming up; nodes retry the config
	// fetch briefly rather than making boot order matter.
	var cfg cluster.RemoteConfig
	var err error
	for attempt := 0; ; attempt++ {
		cfg, err = cluster.FetchConfig(ctx, nil, fetch)
		if err == nil {
			break
		}
		if attempt >= 120 {
			log.Fatalf("bootstrap: %v", err)
		}
		time.Sleep(250 * time.Millisecond)
	}
	owned := cfg.OwnedShards(id)
	if len(owned) == 0 {
		log.Fatalf("node %q owns no shards in a %d-shard cluster over nodes %v — is -id in the coordinator's -nodes list?", id, cfg.Shards, cfg.Nodes)
	}
	t0 := time.Now()
	if _, err := cluster.FetchShards(ctx, nil, fetch, dir, owned); err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	shards, err := cluster.LoadShards(dir, owned)
	if err != nil {
		log.Fatalf("bootstrap: %v", err)
	}
	n := cluster.NewNode(id, cfg.Problem, shards)
	items := 0
	for _, sv := range shards {
		items += sv.Len()
	}
	log.Printf("topk-node %s: problem=%s shards=%v items=%d bootstrapped in %s (files in %s) on %s",
		id, cfg.Problem, n.ShardIDs(), items, time.Since(t0).Round(time.Millisecond), filepath.Clean(dir), addr)
	log.Fatal(http.ListenAndServe(addr, n.Handler()))
}
