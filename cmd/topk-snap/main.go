// Command topk-snap saves, inspects, verifies, and converts index
// snapshots (the versioned on-disk format of DESIGN.md §12). It is the
// operational companion to topk-serve's -snapshot-dir warm start: save
// produces a snapshot directory without running a server, inspect prints
// what a snapshot contains without restoring it, verify proves a restored
// index answers byte-identically to a fresh build, and convert reshards a
// snapshot in place of the usual dump-and-rebuild cycle.
//
// Usage:
//
//	topk-snap save    -dir DIR [-problem interval] [-n 20000] [-seed 42] [-reduction worstcase] [-shards 1] [-updates] [-maintenance buffered]
//	topk-snap inspect -dir DIR [-sections]
//	topk-snap verify  -dir DIR [-queries 200] [-k 10] [-qseed 1]
//	topk-snap convert -src DIR -dst DIR -shards N
//
// save builds the registry's deterministic workload for the problem and
// snapshots it — the same items topk-serve would serve with the same
// flags, so a saved directory warm-starts a server byte-identically.
//
// verify restores the directory, rebuilds the same workload from scratch
// (problem, item count, reduction, and shard count come from the
// manifest; the workload seed must be supplied if it was not the
// default), and diffs top-k, max, and report-above answers over a
// deterministic query set. Any divergence is a corrupt or mislabeled
// snapshot and exits non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"

	"topk"
	"topk/internal/snap"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	var err error
	switch os.Args[1] {
	case "save":
		err = cmdSave(os.Args[2:])
	case "inspect":
		err = cmdInspect(os.Args[2:])
	case "verify":
		err = cmdVerify(os.Args[2:])
	case "convert":
		err = cmdConvert(os.Args[2:])
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "topk-snap %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: topk-snap <command> [flags]

commands:
  save     build a registry workload and snapshot it to a directory
  inspect  print a snapshot's manifest (and sections with -sections)
  verify   restore a snapshot and answer-diff it against a fresh build
  convert  rewrite a snapshot at a different shard count

run "topk-snap <command> -h" for the command's flags
`)
	os.Exit(2)
}

// parseReduction maps a reduction's String() name (case-insensitive)
// back to the Reduction value.
func parseReduction(name string) (topk.Reduction, error) {
	for _, r := range topk.AllReductions() {
		if strings.EqualFold(r.String(), name) {
			return r, nil
		}
	}
	var names []string
	for _, r := range topk.AllReductions() {
		names = append(names, r.String())
	}
	return 0, fmt.Errorf("unknown reduction %q (want one of: %s)", name, strings.Join(names, ", "))
}

func specFor(problem string) (topk.ProblemSpec, error) {
	spec, ok := topk.ProblemByName(problem)
	if !ok {
		return topk.ProblemSpec{}, fmt.Errorf("unknown problem %q (want one of: %s)", problem, strings.Join(topk.ProblemNames(), ", "))
	}
	return spec, nil
}

func cmdSave(args []string) error {
	fs := flag.NewFlagSet("save", flag.ExitOnError)
	var (
		dir       = fs.String("dir", "", "snapshot directory to write (required)")
		problem   = fs.String("problem", "interval", "problem to build: "+strings.Join(topk.ProblemNames(), " | "))
		n         = fs.Int("n", 20000, "number of indexed items")
		seed      = fs.Uint64("seed", 42, "workload seed")
		reduction = fs.String("reduction", "WorstCase", "reduction to build with")
		shards    = fs.Int("shards", 1, "partition across this many shards")
		updates   = fs.Bool("updates", false, "build with the dynamization overlay (WithUpdates)")
		maint     = fs.String("maintenance", "logarithmic", "overlay maintenance policy: logarithmic | buffered (only meaningful with -updates)")
	)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	spec, err := specFor(*problem)
	if err != nil {
		return err
	}
	red, err := parseReduction(*reduction)
	if err != nil {
		return err
	}
	opts := []topk.Option{topk.WithSeed(*seed), topk.WithReduction(red)}
	if *updates {
		opts = append(opts, topk.WithUpdates())
	}
	switch *maint {
	case "logarithmic":
	case "buffered":
		opts = append(opts, topk.WithMaintenancePolicy(topk.PolicyBuffered))
	default:
		return fmt.Errorf("unknown -maintenance %q (want logarithmic or buffered)", *maint)
	}
	var ix topk.Served
	if *shards > 1 {
		ix, err = spec.BuildSharded(*n, *shards, *seed, opts...)
	} else {
		ix, err = spec.Build(*n, *seed, opts...)
	}
	if err != nil {
		return err
	}
	if err := ix.Snapshot(*dir); err != nil {
		return err
	}
	mf, err := topk.ReadManifest(*dir)
	if err != nil {
		return err
	}
	var bytes int64
	for _, f := range mf.Files {
		bytes += f.Bytes
	}
	fmt.Printf("saved %s: %s/%s, %d items, %d shard(s), %d bytes\n",
		*dir, mf.Problem, mf.Reduction, mf.Items, mf.Shards, bytes)
	return nil
}

var sectionNames = map[uint16]string{
	snap.SecEnd:             "end",
	snap.SecHeader:          "header",
	snap.SecConfig:          "config",
	snap.SecItems:           "items",
	snap.SecOverlayLevel:    "overlay-level",
	snap.SecOverlayTail:     "overlay-tail",
	snap.SecOverlayCounters: "overlay-counters",
	snap.SecOverlayPolicy:   "overlay-policy",
}

var kindNames = map[uint8]string{
	snap.KindStatic:  "static",
	snap.KindOverlay: "overlay",
	snap.KindNative:  "native-dynamic",
}

func cmdInspect(args []string) error {
	fs := flag.NewFlagSet("inspect", flag.ExitOnError)
	var (
		dir      = fs.String("dir", "", "snapshot directory to inspect (required)")
		sections = fs.Bool("sections", false, "also walk each shard file's sections")
	)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	mf, err := topk.ReadManifest(*dir)
	if err != nil {
		return err
	}
	fmt.Printf("format      v%d\n", mf.FormatVersion)
	fmt.Printf("problem     %s", mf.Problem)
	if mf.Dim > 0 {
		fmt.Printf(" (dim %d)", mf.Dim)
	}
	fmt.Println()
	fmt.Printf("reduction   %s\n", mf.Reduction)
	if mf.Maintenance != "" {
		fmt.Printf("maintenance %s\n", mf.Maintenance)
	}
	fmt.Printf("items       %d\n", mf.Items)
	if mf.Partitioned {
		fmt.Printf("shards      %d (policy %s, rr cursor %d)\n", mf.Shards, mf.Policy, mf.RR)
	} else {
		fmt.Printf("shards      1 (unpartitioned)\n")
	}
	for _, f := range mf.Files {
		fmt.Printf("file        %s  shard %d  %d items  %d bytes  crc32 %08x\n",
			f.Name, f.Shard, f.Items, f.Bytes, f.CRC32)
		if *sections {
			if err := inspectFile(filepath.Join(*dir, f.Name)); err != nil {
				return fmt.Errorf("%s: %w", f.Name, err)
			}
		}
	}
	return nil
}

// inspectFile walks one shard file's sections, verifying framing and
// checksums along the way (Next fails on any corruption).
func inspectFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rd, err := snap.NewReader(f)
	if err != nil {
		return err
	}
	h, err := rd.ReadHeader()
	if err != nil {
		return err
	}
	fmt.Printf("            header: %s/%s kind=%s items=%d dim=%d\n",
		h.Problem, h.Reduction, kindNames[h.Kind], h.Items, h.Dim)
	for {
		typ, sec, err := rd.Next()
		if err != nil {
			return err
		}
		if typ == snap.SecEnd {
			return nil
		}
		name := sectionNames[typ]
		if name == "" {
			name = fmt.Sprintf("unknown(%d)", typ)
		}
		fmt.Printf("            section %-17s %6d bytes\n", name, sec.Len())
		if typ == snap.SecOverlayPolicy {
			printPolicySection(sec)
		}
	}
}

// printPolicySection decodes the version-2 overlay-policy section: the
// maintenance policy id, its partial-rebuild counter, and the buffered
// ladder's per-tier run occupancy.
func printPolicySection(sec *snap.Section) {
	id := sec.RStr()
	partials := sec.RI64()
	n := sec.RCount(16)
	runs := map[int]int{}
	maxTier := -1
	for i := 0; i < n; i++ {
		sec.RU64() // slot: placement detail, occupancy is what matters here
		tier := int(sec.RU64())
		runs[tier]++
		if tier > maxTier {
			maxTier = tier
		}
	}
	fmt.Printf("              policy %s, %d partial rebuild(s), %d pending run(s)\n", id, partials, n)
	for t := 0; t <= maxTier; t++ {
		fmt.Printf("              tier %d: %d run(s)\n", t, runs[t])
	}
}

func cmdVerify(args []string) error {
	fs := flag.NewFlagSet("verify", flag.ExitOnError)
	var (
		dir     = fs.String("dir", "", "snapshot directory to verify (required)")
		seed    = fs.Uint64("seed", 42, "workload seed the snapshot was built from")
		queries = fs.Int("queries", 200, "number of deterministic queries to diff")
		k       = fs.Int("k", 10, "top-k size")
		qseed   = fs.Uint64("qseed", 1, "query-generation seed")
	)
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("-dir is required")
	}
	mf, err := topk.ReadManifest(*dir)
	if err != nil {
		return err
	}
	spec, err := specFor(mf.Problem)
	if err != nil {
		return err
	}
	red, err := parseReduction(mf.Reduction)
	if err != nil {
		return err
	}

	restored, err := spec.Restore(*dir)
	if err != nil {
		return fmt.Errorf("restore: %w", err)
	}
	restoreReads := restored.Stats().Reads

	opts := []topk.Option{topk.WithSeed(*seed), topk.WithReduction(red)}
	var fresh topk.Served
	if mf.Partitioned {
		fresh, err = spec.BuildSharded(int(mf.Items), mf.Shards, *seed, opts...)
	} else {
		fresh, err = spec.Build(int(mf.Items), *seed, opts...)
	}
	if err != nil {
		return fmt.Errorf("fresh build: %w", err)
	}

	if restored.Len() != fresh.Len() {
		return fmt.Errorf("restored index holds %d items, fresh build holds %d — wrong seed, or snapshot taken after updates (verify only covers as-built snapshots)", restored.Len(), fresh.Len())
	}
	qs := fresh.GenQueries(*queries, *qseed)
	for i, q := range qs {
		if got, want := restored.TopK(q, *k), fresh.TopK(q, *k); !reflect.DeepEqual(got, want) {
			return fmt.Errorf("query %d: top-%d answers diverge\n  restored: %v\n  fresh:    %v", i, *k, got, want)
		}
		gm, gok := restored.Max(q)
		wm, wok := fresh.Max(q)
		if gok != wok || (gok && gm != wm) {
			return fmt.Errorf("query %d: max answers diverge (restored %v,%v; fresh %v,%v)", i, gm, gok, wm, wok)
		}
		var tau float64
		if wok {
			tau = wm.Weight / 2
		}
		if got, want := restored.ReportAbove(q, tau), fresh.ReportAbove(q, tau); !sameSet(got, want) {
			return fmt.Errorf("query %d: report-above answers diverge (%d vs %d items)", i, len(got), len(want))
		}
	}
	fmt.Printf("verified %s: %d queries identical on %s/%s, %d items, %d shard(s); restore cost %d read I/Os\n",
		*dir, len(qs), mf.Problem, mf.Reduction, mf.Items, restored.Shards(), restoreReads)
	return nil
}

// sameSet compares two ReportAbove answers ignoring order (the contract
// leaves enumeration order unspecified, and shard merge order may differ
// between a restored and a fresh partition).
func sameSet(a, b []topk.ServedItem) bool {
	if len(a) != len(b) {
		return false
	}
	seen := make(map[float64]topk.ServedItem, len(a))
	for _, it := range a {
		seen[it.Weight] = it
	}
	for _, it := range b {
		got, ok := seen[it.Weight]
		if !ok || got != it {
			return false
		}
	}
	return true
}

func cmdConvert(args []string) error {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	var (
		src    = fs.String("src", "", "source snapshot directory (required)")
		dst    = fs.String("dst", "", "destination snapshot directory (required)")
		shards = fs.Int("shards", 0, "target shard count (required, >= 1)")
	)
	fs.Parse(args)
	if *src == "" || *dst == "" {
		return fmt.Errorf("-src and -dst are required")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be >= 1")
	}
	mf, err := topk.ReadManifest(*src)
	if err != nil {
		return err
	}
	spec, err := specFor(mf.Problem)
	if err != nil {
		return err
	}
	if err := spec.Reshard(*src, *dst, *shards); err != nil {
		return err
	}
	fmt.Printf("converted %s (%d shard(s)) -> %s (%d shard(s)), %d items\n",
		*src, mf.Shards, *dst, *shards, mf.Items)
	return nil
}
