// Command topk-serve exposes a live top-k index over HTTP: a /query
// endpoint backed by the concurrent QueryBatch path, a Prometheus
// /metrics endpoint, expvar and pprof debug surfaces, and a slow-query
// ring buffer at /debug/slow. It exists so the paper's I/O accounting
// can be watched from standard observability tooling while a workload
// runs.
//
// Every problem in the library's registry can be served; there is no
// per-problem code here. GET /problems lists what is available.
//
// With -snapshot-dir the server warm-starts: if the directory holds a
// snapshot it is restored at O(size/B) sequential read I/Os instead of
// rebuilding the index, and the boot log reports the restore cost. The
// directory is (re)written on boot when empty, on demand via
// POST /snapshot, and periodically with -checkpoint-every. Checkpoints
// are atomic — written to a temporary sibling and renamed in — so a
// crash mid-checkpoint leaves the previous snapshot restorable.
//
// The server enforces a request lifecycle: -io-budget caps the
// simulated I/Os any single query may charge (per shard when sharded;
// -1 auto-derives the cap from a boot-time calibration batch), -deadline
// bounds its wall-clock time, and -degrade-max falls back to the
// provably-correct top-1 prefix instead of failing when a limit trips.
// Per-request overrides ride the /query body (budget_ios, deadline_ms,
// degrade), and every per-query answer reports its outcome.
//
// Usage:
//
//	topk-serve                       # interval index, n=20000, :8080
//	topk-serve -problem dominance -n 5e4
//	topk-serve -slow-ios 200         # log queries costing >= 200 I/Os
//	topk-serve -io-budget -1 -degrade-max
//	topk-serve -snapshot-dir /var/lib/topk -checkpoint-every 5m
//
// Endpoints:
//
//	GET  /metrics      Prometheus text exposition
//	GET  /problems     registered problems, query/item shapes, update support
//	POST /query        {"queries":[...], "k":10} -> per-query answers + I/O stats
//	POST /ingest       NDJSON bulk update: one item (or {"delete": w}) per line
//	POST /snapshot     checkpoint the index into -snapshot-dir now
//	GET  /debug/slow   recent slow-query traces (plain text)
//	GET  /debug/trace  Chrome trace-event JSON for n sample queries
//	GET  /debug/vars   expvar JSON
//	GET  /debug/pprof  net/http/pprof profiles
//	GET  /healthz      liveness
package main

import (
	"bufio"
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"topk"
	"topk/internal/cluster"
	"topk/internal/obs"
)

// server is the HTTP surface around one Served index from the problem
// registry.
type server struct {
	problem     string
	n           int
	shards      int
	parallelism int
	ix          topk.Served
	slow        *ringWriter
	started     time.Time

	// ixMu guards the index's exclusive-update contract: queries,
	// traces, and snapshots share the read side, /ingest takes the
	// write side. Uncontended RLock/RUnlock is nanoseconds against
	// queries that simulate whole I/O traces, so the read path's cost
	// is unchanged in any measurable way.
	ixMu sync.RWMutex

	// Request-lifecycle defaults, overridable per /query request.
	budget   int64         // I/O budget per query per shard (0 = unlimited)
	deadline time.Duration // wall-clock deadline per batch (0 = none)
	degrade  bool          // fall back to top-1 Max instead of failing

	// procReg holds the process-level runtime gauges (goroutines, heap,
	// GC); index metrics live in the index's own registry.
	procReg *obs.Registry

	// snapDir is where checkpoints land ("" disables persistence).
	// warmStart records whether this process restored from a snapshot,
	// and restoreReads what the restore cost in simulated read I/Os.
	snapDir      string
	warmStart    bool
	restoreReads int64
	snapMu       sync.Mutex // serializes checkpoints (timer vs POST /snapshot)
	checkpoints  expvar.Int
}

// queryRequest is the /query body. Queries are problem-shaped; see
// GET /problems for each problem's wire shape.
type queryRequest struct {
	Queries     []json.RawMessage `json:"queries"`
	K           int               `json:"k"`
	Parallelism int               `json:"parallelism"`
	// BudgetIOs overrides the server's -io-budget for this request:
	// > 0 sets a cap, < 0 disables the server default, 0 keeps it.
	BudgetIOs int64 `json:"budget_ios,omitempty"`
	// DeadlineMS overrides -deadline the same way.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// Degrade overrides -degrade-max when present.
	Degrade *bool `json:"degrade,omitempty"`
}

// queryResult is one query's slice of the /query response.
type queryResult struct {
	Items []resultItem `json:"items"`
	Reads int64        `json:"reads"`
	Wri   int64        `json:"writes"`
	Hits  int64        `json:"hits"`
	IOs   int64        `json:"ios"`
	// Outcome is how the query ended under its lifecycle limits: "ok",
	// "degraded" (top-1 fallback), "budget_exceeded", or
	// "deadline_exceeded".
	Outcome string `json:"outcome"`
	Error   string `json:"error,omitempty"`
}

type resultItem struct {
	Weight float64 `json:"weight"`
	Label  string  `json:"label,omitempty"`
}

// ringWriter retains the last few slow-query entries for /debug/slow.
// It is handed to WithSlowQueryLog as the io.Writer.
type ringWriter struct {
	mu      sync.Mutex
	entries []string
	next    int
}

func newRingWriter(keep int) *ringWriter {
	return &ringWriter{entries: make([]string, 0, keep)}
}

func (r *ringWriter) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := string(p)
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
	} else {
		r.entries[r.next] = e
		r.next = (r.next + 1) % cap(r.entries)
	}
	return len(p), nil
}

func (r *ringWriter) dump(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(r.entries); i++ {
		io.WriteString(w, r.entries[(r.next+i)%len(r.entries)])
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		problem     = flag.String("problem", "interval", "problem to serve: "+strings.Join(topk.ProblemNames(), " | "))
		n           = flag.Int("n", 20000, "number of indexed items")
		shards      = flag.Int("shards", 1, "partition the index across this many shards (parallel fan-out/merge)")
		seed        = flag.Uint64("seed", 42, "workload seed")
		slowIOs     = flag.Int64("slow-ios", 500, "slow-query I/O threshold (0 disables)")
		updates     = flag.Bool("updates", false, "dynamize the index through the overlay even when the reduction is not natively dynamic")
		maintenance = flag.String("maintenance", "logarithmic", "overlay maintenance policy: logarithmic | buffered (only meaningful with -updates)")
		parallelism = flag.Int("parallelism", 0, "default /query parallelism (0 = GOMAXPROCS)")
		snapDir     = flag.String("snapshot-dir", "", "snapshot directory: restore from it on boot if present, checkpoint into it (empty disables)")
		checkEvery  = flag.Duration("checkpoint-every", 0, "checkpoint into -snapshot-dir at this interval (0 disables)")
		diskDir     = flag.String("disk-dir", "", "page EM blocks through a real file in this directory (empty keeps the in-memory simulator)")
		slowKeep    = flag.Int("slow-keep", 64, "slow-query entries retained for /debug/slow")
		queryLog    = flag.String("query-log", "", "append one JSON wide event per query to this file (\"-\" = stderr, empty disables)")
		ioBudget    = flag.Int64("io-budget", 0, "per-query, per-shard I/O budget (0 = unlimited, -1 = auto-derive from a calibration batch)")
		deadline    = flag.Duration("deadline", 0, "per-batch wall-clock deadline (0 = none)")
		degradeMax  = flag.Bool("degrade-max", false, "on budget/deadline abort, fall back to the top-1 Max answer instead of failing the query")
	)
	flag.Parse()

	var qlogW io.Writer
	switch *queryLog {
	case "":
	case "-":
		qlogW = os.Stderr
	default:
		f, err := os.OpenFile(*queryLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fmt.Fprintf(os.Stderr, "topk-serve: opening -query-log: %v\n", err)
			os.Exit(1)
		}
		qlogW = f
	}

	var extra []topk.Option
	if *updates {
		extra = append(extra, topk.WithUpdates())
	}
	switch *maintenance {
	case "logarithmic":
	case "buffered":
		extra = append(extra, topk.WithMaintenancePolicy(topk.PolicyBuffered))
	default:
		fmt.Fprintf(os.Stderr, "topk-serve: unknown -maintenance %q (want logarithmic or buffered)\n", *maintenance)
		os.Exit(1)
	}

	slow := newRingWriter(*slowKeep)
	srv, err := buildServer(*problem, *n, *shards, *seed, *slowIOs, *parallelism, *snapDir, *diskDir, *slowKeep, slow, qlogW, extra...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topk-serve: %v\n", err)
		os.Exit(1)
	}
	srv.deadline = *deadline
	srv.degrade = *degradeMax
	srv.budget = *ioBudget
	if *ioBudget < 0 {
		srv.budget = srv.calibrateBudget(*seed)
		log.Printf("topk-serve: auto-derived I/O budget: %d I/Os per query per shard", srv.budget)
	}
	srv.procReg = obs.NewRegistry()
	obs.RegisterRuntimeMetrics(srv.procReg, buildVersion())

	expvar.NewString("topk_problem").Set(*problem)
	expvar.NewInt("topk_items").Set(int64(srv.ix.Len()))
	expvar.NewInt("topk_shards").Set(int64(srv.ix.Shards()))
	warm := expvar.NewInt("topk_warm_start")
	if srv.warmStart {
		warm.Set(1)
	}
	expvar.NewInt("topk_restore_read_ios").Set(srv.restoreReads)
	expvar.Publish("topk_checkpoints_total", &srv.checkpoints)
	expvar.NewInt("topk_io_budget").Set(srv.budget)
	expvar.NewInt("topk_deadline_ms").Set(srv.deadline.Milliseconds())

	if srv.snapDir != "" && !srv.warmStart {
		// Cold boot with persistence on: seed the directory so the next
		// boot is warm.
		if err := srv.checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "topk-serve: initial checkpoint: %v\n", err)
			os.Exit(1)
		}
	}
	if *checkEvery > 0 && srv.snapDir != "" {
		go func() {
			for range time.Tick(*checkEvery) {
				if err := srv.checkpoint(); err != nil {
					log.Printf("topk-serve: checkpoint: %v", err)
				}
			}
		}()
	}

	http.HandleFunc("/metrics", srv.handleMetrics)
	http.HandleFunc("/problems", handleProblems)
	http.HandleFunc("/query", srv.handleQuery)
	http.HandleFunc("/ingest", srv.handleIngest)
	http.HandleFunc("/snapshot", srv.handleSnapshot)
	if srv.snapDir != "" {
		// Snapshot shipping for cluster bootstrap: topk-node replicas can
		// seed directly from this server's snapshot directory.
		http.Handle("/snapshot/", cluster.SnapshotHandler(srv.snapDir))
	}
	http.HandleFunc("/debug/slow", srv.handleSlow)
	http.HandleFunc("/debug/trace", srv.handleTrace)
	http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /debug/vars (expvar) and /debug/pprof are registered by their
	// packages' imports on the default mux.

	boot := "cold build"
	if srv.warmStart {
		boot = fmt.Sprintf("warm start, %d read I/Os", srv.restoreReads)
	}
	log.Printf("topk-serve: %s index over %d items in %d shard(s) on %s (%s, slow-ios=%d)",
		*problem, srv.ix.Len(), srv.ix.Shards(), *addr, boot, *slowIOs)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

// buildServer constructs the selected problem's index from the registry
// with full observability and returns the HTTP adapter around it. With
// shards > 1 the index is partitioned and every query fans out across
// the shards (metric series then carry a shard label). When snapDir
// holds a snapshot of the same problem, the index is restored from it —
// a warm start at O(size/B) read I/Os — instead of built; the restore
// keeps the snapshot's reduction, shard count, and seed, so -n and
// -shards are ignored on that path.
//
// A non-empty diskDir attaches a file-backed block store: every cache
// miss becomes a real pread against a block file under diskDir, and the
// topk_store_* metric series report the physical traffic. Answers and
// logical I/O counts are identical to the in-memory simulator.
func buildServer(problem string, n, shards int, seed uint64, slowIOs int64, parallelism int, snapDir, diskDir string, slowKeep int, slow *ringWriter, qlogW io.Writer, extra ...topk.Option) (*server, error) {
	spec, ok := topk.ProblemByName(problem)
	if !ok {
		return nil, fmt.Errorf("unknown problem %q (want one of: %s)", problem, strings.Join(topk.ProblemNames(), ", "))
	}
	opts := []topk.Option{topk.WithSeed(seed), topk.WithTracing(), topk.WithMetrics()}
	opts = append(opts, extra...)
	if slowIOs > 0 {
		opts = append(opts, topk.WithSlowQueryLog(slow, slowIOs), topk.WithSlowLogKeep(slowKeep))
	}
	if qlogW != nil {
		opts = append(opts, topk.WithQueryLog(qlogW))
	}
	if diskDir != "" {
		opts = append(opts, topk.WithDiskStore(diskDir))
	}
	if snapDir != "" {
		if mf, err := topk.ReadManifest(snapDir); err == nil {
			if mf.Problem != problem {
				return nil, fmt.Errorf("snapshot %s holds a %q index, server was asked to serve %q", snapDir, mf.Problem, problem)
			}
			ix, err := spec.Restore(snapDir, opts...)
			if err != nil {
				return nil, fmt.Errorf("restoring %s: %w", snapDir, err)
			}
			return &server{
				problem: problem, n: ix.Len(), shards: ix.Shards(), parallelism: parallelism,
				ix: ix, slow: slow, started: time.Now(),
				snapDir: snapDir, warmStart: true, restoreReads: ix.Stats().Reads,
			}, nil
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("reading snapshot %s: %w", snapDir, err)
		}
	}
	var (
		ix  topk.Served
		err error
	)
	if shards > 1 {
		ix, err = spec.BuildSharded(n, shards, seed, opts...)
	} else {
		ix, err = spec.Build(n, seed, opts...)
	}
	if err != nil {
		return nil, err
	}
	return &server{
		problem: problem, n: n, shards: ix.Shards(), parallelism: parallelism,
		ix: ix, slow: slow, started: time.Now(), snapDir: snapDir,
	}, nil
}

// buildVersion reports the main module version when built from a tagged
// or stamped checkout, "dev" otherwise.
func buildVersion() string {
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" && bi.Main.Version != "(devel)" {
		return bi.Main.Version
	}
	return "dev"
}

// calibrateBudget derives the -io-budget -1 cap from observed cost: it
// runs an unbudgeted calibration batch of generated queries, takes the
// p99 of the per-query I/O cost, and doubles it for headroom. Queries
// that cost more than twice the calibrated tail are the pathological
// outliers the budget exists to cut off. The calibration traffic counts
// toward the index's query metrics (it is real load, served at boot).
func (s *server) calibrateBudget(seed uint64) int64 {
	const calQueries, calK = 256, 10
	qs := s.ix.GenQueries(calQueries, seed+1)
	res := s.ix.QueryBatch(qs, calK, 0)
	ios := make([]int64, 0, len(res))
	for _, r := range res {
		ios = append(ios, r.Stats.IOs())
	}
	sort.Slice(ios, func(i, j int) bool { return ios[i] < ios[j] })
	p99 := ios[(len(ios)*99+99)/100-1]
	budget := 2 * p99
	if budget < 16 {
		budget = 16
	}
	return budget
}

// queryCtx assembles one request's lifecycle limits from the server
// defaults and the request's overrides.
func (s *server) queryCtx(req queryRequest) topk.QueryCtx {
	ctx := topk.QueryCtx{IOBudget: s.budget, DegradeToMax: s.degrade}
	if req.BudgetIOs > 0 {
		ctx.IOBudget = req.BudgetIOs
	} else if req.BudgetIOs < 0 {
		ctx.IOBudget = 0
	}
	d := s.deadline
	if req.DeadlineMS > 0 {
		d = time.Duration(req.DeadlineMS) * time.Millisecond
	} else if req.DeadlineMS < 0 {
		d = 0
	}
	if d > 0 {
		ctx.Deadline = time.Now().Add(d)
	}
	if req.Degrade != nil {
		ctx.DegradeToMax = *req.Degrade
	}
	return ctx
}

// checkpoint snapshots the index into s.snapDir atomically: the snapshot
// is written to a temporary sibling directory and renamed into place, so
// a crash mid-write leaves the previous checkpoint intact. Safe to call
// concurrently with queries (snapshotting only reads index state), but
// checkpoints themselves are serialized.
func (s *server) checkpoint() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	s.ixMu.RLock()
	defer s.ixMu.RUnlock()
	tmp := s.snapDir + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := s.ix.Snapshot(tmp); err != nil {
		return err
	}
	old := s.snapDir + ".old"
	if err := os.RemoveAll(old); err != nil {
		return err
	}
	if _, err := os.Stat(s.snapDir); err == nil {
		if err := os.Rename(s.snapDir, old); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, s.snapDir); err != nil {
		return err
	}
	os.RemoveAll(old)
	s.checkpoints.Add(1)
	return nil
}

// handleSnapshot checkpoints on demand: POST /snapshot.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.snapDir == "" {
		http.Error(w, "server started without -snapshot-dir", http.StatusConflict)
		return
	}
	if err := s.checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"dir":         s.snapDir,
		"checkpoints": s.checkpoints.Value(),
	})
}

// handleProblems lists the registry: every problem any topk-serve binary
// can host, its JSON query shape, and its update support.
func handleProblems(w http.ResponseWriter, _ *http.Request) {
	type problemInfo struct {
		Name          string   `json:"name"`
		Dim           int      `json:"dim,omitempty"`
		QueryShape    string   `json:"query_shape"`
		ItemShape     string   `json:"item_shape"`
		Updates       string   `json:"updates"`
		NativeDynamic bool     `json:"native_dynamic"`
		Reductions    []string `json:"reductions"`
	}
	var reductions []string
	for _, r := range topk.AllReductions() {
		reductions = append(reductions, r.String())
	}
	var out []problemInfo
	for _, spec := range topk.RegisteredProblems() {
		out = append(out, problemInfo{
			Name:          spec.Name,
			Dim:           spec.Dim,
			QueryShape:    spec.QueryShape,
			ItemShape:     spec.ItemShape,
			Updates:       spec.Updatable(),
			NativeDynamic: spec.NativeDynamic,
			Reductions:    reductions,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"problems": out})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.ix.WriteMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Persistence counters live at the server layer, not in the index's
	// metrics registry, so they are appended to the exposition here.
	warm := 0
	if s.warmStart {
		warm = 1
	}
	fmt.Fprintf(w, "# HELP topk_warm_start Whether this process restored its index from a snapshot (1) or built it cold (0).\n")
	fmt.Fprintf(w, "# TYPE topk_warm_start gauge\ntopk_warm_start %d\n", warm)
	fmt.Fprintf(w, "# HELP topk_restore_read_ios Simulated sequential read I/Os charged for the boot-time restore.\n")
	fmt.Fprintf(w, "# TYPE topk_restore_read_ios gauge\ntopk_restore_read_ios %d\n", s.restoreReads)
	fmt.Fprintf(w, "# HELP topk_checkpoints_total Snapshot checkpoints written by this process.\n")
	fmt.Fprintf(w, "# TYPE topk_checkpoints_total counter\ntopk_checkpoints_total %d\n", s.checkpoints.Value())
	if s.procReg != nil {
		s.procReg.WritePrometheus(w)
	}
}

// handleTrace runs n freshly generated sample queries and streams their
// span trees as Chrome trace-event JSON (open in chrome://tracing or
// Perfetto). The timeline is virtual: 1 simulated I/O renders as 1µs,
// so slice widths compare I/O cost. GET /debug/trace?n=8&k=10&seed=1
func (s *server) handleTrace(w http.ResponseWriter, r *http.Request) {
	intParam := func(name string, def, max int) int {
		v := r.URL.Query().Get(name)
		if v == "" {
			return def
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 || n > max {
			return def
		}
		return n
	}
	n := intParam("n", 8, 64)
	k := intParam("k", 10, 1000)
	seed := uint64(intParam("seed", 1, 1<<30))
	s.ixMu.RLock()
	qs := s.ix.GenQueries(n, seed)
	res := s.ix.QueryBatchCtx(s.queryCtx(queryRequest{}), qs, k, 0)
	s.ixMu.RUnlock()
	traces := make([]topk.NamedTrace, len(res))
	for i, br := range res {
		traces[i] = topk.NamedTrace{
			Name:   fmt.Sprintf("%s q%d (%d IOs, %s)", s.problem, i, br.Stats.IOs(), br.Outcome),
			Events: br.Trace,
		}
	}
	w.Header().Set("Content-Type", "application/json")
	if err := topk.WriteChromeTrace(w, traces); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 10000 {
		http.Error(w, "need 1..10000 queries", http.StatusBadRequest)
		return
	}
	if req.K <= 0 || req.K > 1000 {
		http.Error(w, "need 1 <= k <= 1000", http.StatusBadRequest)
		return
	}
	qs := make([]any, len(req.Queries))
	for i, raw := range req.Queries {
		q, err := s.ix.DecodeQuery(raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("query %d: %v", i, err), http.StatusBadRequest)
			return
		}
		qs[i] = q
	}
	p := req.Parallelism
	if p == 0 {
		p = s.parallelism
	}
	start := time.Now()
	s.ixMu.RLock()
	res := s.ix.QueryBatchCtx(s.queryCtx(req), qs, req.K, p)
	s.ixMu.RUnlock()
	out := make([]queryResult, len(res))
	for i, r := range res {
		out[i] = queryResult{
			Items: make([]resultItem, 0, len(r.Items)),
			Reads: r.Stats.Reads, Wri: r.Stats.Writes, Hits: r.Stats.Hits, IOs: r.Stats.IOs(),
			Outcome: r.Outcome.String(),
		}
		if r.Err != nil {
			out[i].Error = r.Err.Error()
		}
		for _, it := range r.Items {
			out[i].Items = append(out[i].Items, resultItem{Weight: it.Weight, Label: it.Label})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"problem": s.problem,
		"shards":  s.shards,
		"k":       req.K,
		"elapsed": time.Since(start).String(),
		"results": out,
	})
}

// handleIngest is the bulk-update endpoint: POST /ingest with an NDJSON
// body, one operation per line. A line holding the problem's item shape
// (GET /problems reports it) inserts that item; a line of the form
// {"delete": w} removes the item with weight w. Consecutive lines of
// the same kind coalesce into one InsertBatch or DeleteBatch, so a
// bulk load pays the overlay's sorted-merge flush cost once per run
// instead of a per-item tail pass — that is the whole point of the
// endpoint over many single inserts.
//
// The body is fully decoded before anything is applied, so malformed
// lines reject the request with no mutation. Runs then apply in stream
// order; a run rejected by validation (duplicate weight, bad geometry,
// static index) stops the stream there and the response reports what
// was applied before it.
func (s *server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	type run struct {
		items   []any
		deletes []float64
	}
	var (
		runs    []run
		lineNo  int
		decoded int
	)
	sc := bufio.NewScanner(io.LimitReader(r.Body, 256<<20))
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var del struct {
			Delete *float64 `json:"delete"`
		}
		if err := json.Unmarshal([]byte(line), &del); err != nil {
			http.Error(w, fmt.Sprintf("line %d: %v", lineNo, err), http.StatusBadRequest)
			return
		}
		if del.Delete != nil {
			if len(runs) == 0 || len(runs[len(runs)-1].deletes) == 0 {
				runs = append(runs, run{})
			}
			runs[len(runs)-1].deletes = append(runs[len(runs)-1].deletes, *del.Delete)
		} else {
			it, err := s.ix.DecodeItem(json.RawMessage(line))
			if err != nil {
				http.Error(w, fmt.Sprintf("line %d: %v", lineNo, err), http.StatusBadRequest)
				return
			}
			if len(runs) == 0 || len(runs[len(runs)-1].items) == 0 {
				runs = append(runs, run{})
			}
			runs[len(runs)-1].items = append(runs[len(runs)-1].items, it)
		}
		decoded++
	}
	if err := sc.Err(); err != nil {
		http.Error(w, "reading body: "+err.Error(), http.StatusBadRequest)
		return
	}
	if decoded == 0 {
		http.Error(w, "empty ingest body (want NDJSON, one item or delete per line)", http.StatusBadRequest)
		return
	}

	start := time.Now()
	inserted, deleted := 0, 0
	var applyErr error
	s.ixMu.Lock()
	for _, ru := range runs {
		if len(ru.items) > 0 {
			if applyErr = s.ix.InsertBatch(ru.items); applyErr != nil {
				break
			}
			inserted += len(ru.items)
		} else {
			var n int
			if n, applyErr = s.ix.DeleteBatch(ru.deletes); applyErr != nil {
				break
			}
			deleted += n
		}
	}
	total := s.ix.Len()
	s.ixMu.Unlock()

	resp := map[string]any{
		"inserted": inserted,
		"deleted":  deleted,
		"items":    total,
		"elapsed":  time.Since(start).String(),
	}
	if applyErr != nil {
		resp["error"] = applyErr.Error()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(resp)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

func (s *server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	s.slow.dump(&b)
	if b.Len() == 0 {
		fmt.Fprintln(w, "no slow queries recorded")
		return
	}
	io.WriteString(w, b.String())
}
