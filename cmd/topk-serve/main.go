// Command topk-serve exposes a live top-k index over HTTP: a /query
// endpoint backed by the concurrent QueryBatch path, a Prometheus
// /metrics endpoint, expvar and pprof debug surfaces, and a slow-query
// ring buffer at /debug/slow. It exists so the paper's I/O accounting
// can be watched from standard observability tooling while a workload
// runs.
//
// Every problem in the library's registry can be served; there is no
// per-problem code here. GET /problems lists what is available.
//
// With -snapshot-dir the server warm-starts: if the directory holds a
// snapshot it is restored at O(size/B) sequential read I/Os instead of
// rebuilding the index, and the boot log reports the restore cost. The
// directory is (re)written on boot when empty, on demand via
// POST /snapshot, and periodically with -checkpoint-every. Checkpoints
// are atomic — written to a temporary sibling and renamed in — so a
// crash mid-checkpoint leaves the previous snapshot restorable.
//
// Usage:
//
//	topk-serve                       # interval index, n=20000, :8080
//	topk-serve -problem dominance -n 5e4
//	topk-serve -slow-ios 200         # log queries costing >= 200 I/Os
//	topk-serve -snapshot-dir /var/lib/topk -checkpoint-every 5m
//
// Endpoints:
//
//	GET  /metrics      Prometheus text exposition
//	GET  /problems     registered problems, query shapes, update support
//	POST /query        {"queries":[...], "k":10} -> per-query answers + I/O stats
//	POST /snapshot     checkpoint the index into -snapshot-dir now
//	GET  /debug/slow   recent slow-query traces (plain text)
//	GET  /debug/vars   expvar JSON
//	GET  /debug/pprof  net/http/pprof profiles
//	GET  /healthz      liveness
package main

import (
	"encoding/json"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"strings"
	"sync"
	"time"

	"topk"
)

// server is the HTTP surface around one Served index from the problem
// registry.
type server struct {
	problem     string
	n           int
	shards      int
	parallelism int
	ix          topk.Served
	slow        *ringWriter
	started     time.Time

	// snapDir is where checkpoints land ("" disables persistence).
	// warmStart records whether this process restored from a snapshot,
	// and restoreReads what the restore cost in simulated read I/Os.
	snapDir      string
	warmStart    bool
	restoreReads int64
	snapMu       sync.Mutex // serializes checkpoints (timer vs POST /snapshot)
	checkpoints  expvar.Int
}

// queryRequest is the /query body. Queries are problem-shaped; see
// GET /problems for each problem's wire shape.
type queryRequest struct {
	Queries     []json.RawMessage `json:"queries"`
	K           int               `json:"k"`
	Parallelism int               `json:"parallelism"`
}

// queryResult is one query's slice of the /query response.
type queryResult struct {
	Items []resultItem `json:"items"`
	Reads int64        `json:"reads"`
	Wri   int64        `json:"writes"`
	Hits  int64        `json:"hits"`
	IOs   int64        `json:"ios"`
}

type resultItem struct {
	Weight float64 `json:"weight"`
	Label  string  `json:"label,omitempty"`
}

// ringWriter retains the last few slow-query entries for /debug/slow.
// It is handed to WithSlowQueryLog as the io.Writer.
type ringWriter struct {
	mu      sync.Mutex
	entries []string
	next    int
}

func newRingWriter(keep int) *ringWriter {
	return &ringWriter{entries: make([]string, 0, keep)}
}

func (r *ringWriter) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := string(p)
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
	} else {
		r.entries[r.next] = e
		r.next = (r.next + 1) % cap(r.entries)
	}
	return len(p), nil
}

func (r *ringWriter) dump(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(r.entries); i++ {
		io.WriteString(w, r.entries[(r.next+i)%len(r.entries)])
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		problem     = flag.String("problem", "interval", "problem to serve: "+strings.Join(topk.ProblemNames(), " | "))
		n           = flag.Int("n", 20000, "number of indexed items")
		shards      = flag.Int("shards", 1, "partition the index across this many shards (parallel fan-out/merge)")
		seed        = flag.Uint64("seed", 42, "workload seed")
		slowIOs     = flag.Int64("slow-ios", 500, "slow-query I/O threshold (0 disables)")
		parallelism = flag.Int("parallelism", 0, "default /query parallelism (0 = GOMAXPROCS)")
		snapDir     = flag.String("snapshot-dir", "", "snapshot directory: restore from it on boot if present, checkpoint into it (empty disables)")
		checkEvery  = flag.Duration("checkpoint-every", 0, "checkpoint into -snapshot-dir at this interval (0 disables)")
		diskDir     = flag.String("disk-dir", "", "page EM blocks through a real file in this directory (empty keeps the in-memory simulator)")
	)
	flag.Parse()

	slow := newRingWriter(64)
	srv, err := buildServer(*problem, *n, *shards, *seed, *slowIOs, *parallelism, *snapDir, *diskDir, slow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topk-serve: %v\n", err)
		os.Exit(1)
	}

	expvar.NewString("topk_problem").Set(*problem)
	expvar.NewInt("topk_items").Set(int64(srv.ix.Len()))
	expvar.NewInt("topk_shards").Set(int64(srv.ix.Shards()))
	warm := expvar.NewInt("topk_warm_start")
	if srv.warmStart {
		warm.Set(1)
	}
	expvar.NewInt("topk_restore_read_ios").Set(srv.restoreReads)
	expvar.Publish("topk_checkpoints_total", &srv.checkpoints)

	if srv.snapDir != "" && !srv.warmStart {
		// Cold boot with persistence on: seed the directory so the next
		// boot is warm.
		if err := srv.checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "topk-serve: initial checkpoint: %v\n", err)
			os.Exit(1)
		}
	}
	if *checkEvery > 0 && srv.snapDir != "" {
		go func() {
			for range time.Tick(*checkEvery) {
				if err := srv.checkpoint(); err != nil {
					log.Printf("topk-serve: checkpoint: %v", err)
				}
			}
		}()
	}

	http.HandleFunc("/metrics", srv.handleMetrics)
	http.HandleFunc("/problems", handleProblems)
	http.HandleFunc("/query", srv.handleQuery)
	http.HandleFunc("/snapshot", srv.handleSnapshot)
	http.HandleFunc("/debug/slow", srv.handleSlow)
	http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /debug/vars (expvar) and /debug/pprof are registered by their
	// packages' imports on the default mux.

	boot := "cold build"
	if srv.warmStart {
		boot = fmt.Sprintf("warm start, %d read I/Os", srv.restoreReads)
	}
	log.Printf("topk-serve: %s index over %d items in %d shard(s) on %s (%s, slow-ios=%d)",
		*problem, srv.ix.Len(), srv.ix.Shards(), *addr, boot, *slowIOs)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

// buildServer constructs the selected problem's index from the registry
// with full observability and returns the HTTP adapter around it. With
// shards > 1 the index is partitioned and every query fans out across
// the shards (metric series then carry a shard label). When snapDir
// holds a snapshot of the same problem, the index is restored from it —
// a warm start at O(size/B) read I/Os — instead of built; the restore
// keeps the snapshot's reduction, shard count, and seed, so -n and
// -shards are ignored on that path.
//
// A non-empty diskDir attaches a file-backed block store: every cache
// miss becomes a real pread against a block file under diskDir, and the
// topk_store_* metric series report the physical traffic. Answers and
// logical I/O counts are identical to the in-memory simulator.
func buildServer(problem string, n, shards int, seed uint64, slowIOs int64, parallelism int, snapDir, diskDir string, slow *ringWriter) (*server, error) {
	spec, ok := topk.ProblemByName(problem)
	if !ok {
		return nil, fmt.Errorf("unknown problem %q (want one of: %s)", problem, strings.Join(topk.ProblemNames(), ", "))
	}
	opts := []topk.Option{topk.WithSeed(seed), topk.WithTracing(), topk.WithMetrics()}
	if slowIOs > 0 {
		opts = append(opts, topk.WithSlowQueryLog(slow, slowIOs))
	}
	if diskDir != "" {
		opts = append(opts, topk.WithDiskStore(diskDir))
	}
	if snapDir != "" {
		if mf, err := topk.ReadManifest(snapDir); err == nil {
			if mf.Problem != problem {
				return nil, fmt.Errorf("snapshot %s holds a %q index, server was asked to serve %q", snapDir, mf.Problem, problem)
			}
			ix, err := spec.Restore(snapDir, opts...)
			if err != nil {
				return nil, fmt.Errorf("restoring %s: %w", snapDir, err)
			}
			return &server{
				problem: problem, n: ix.Len(), shards: ix.Shards(), parallelism: parallelism,
				ix: ix, slow: slow, started: time.Now(),
				snapDir: snapDir, warmStart: true, restoreReads: ix.Stats().Reads,
			}, nil
		} else if !errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("reading snapshot %s: %w", snapDir, err)
		}
	}
	var (
		ix  topk.Served
		err error
	)
	if shards > 1 {
		ix, err = spec.BuildSharded(n, shards, seed, opts...)
	} else {
		ix, err = spec.Build(n, seed, opts...)
	}
	if err != nil {
		return nil, err
	}
	return &server{
		problem: problem, n: n, shards: ix.Shards(), parallelism: parallelism,
		ix: ix, slow: slow, started: time.Now(), snapDir: snapDir,
	}, nil
}

// checkpoint snapshots the index into s.snapDir atomically: the snapshot
// is written to a temporary sibling directory and renamed into place, so
// a crash mid-write leaves the previous checkpoint intact. Safe to call
// concurrently with queries (snapshotting only reads index state), but
// checkpoints themselves are serialized.
func (s *server) checkpoint() error {
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	tmp := s.snapDir + ".tmp"
	if err := os.RemoveAll(tmp); err != nil {
		return err
	}
	if err := s.ix.Snapshot(tmp); err != nil {
		return err
	}
	old := s.snapDir + ".old"
	if err := os.RemoveAll(old); err != nil {
		return err
	}
	if _, err := os.Stat(s.snapDir); err == nil {
		if err := os.Rename(s.snapDir, old); err != nil {
			return err
		}
	}
	if err := os.Rename(tmp, s.snapDir); err != nil {
		return err
	}
	os.RemoveAll(old)
	s.checkpoints.Add(1)
	return nil
}

// handleSnapshot checkpoints on demand: POST /snapshot.
func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	if s.snapDir == "" {
		http.Error(w, "server started without -snapshot-dir", http.StatusConflict)
		return
	}
	if err := s.checkpoint(); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"dir":         s.snapDir,
		"checkpoints": s.checkpoints.Value(),
	})
}

// handleProblems lists the registry: every problem any topk-serve binary
// can host, its JSON query shape, and its update support.
func handleProblems(w http.ResponseWriter, _ *http.Request) {
	type problemInfo struct {
		Name          string   `json:"name"`
		Dim           int      `json:"dim,omitempty"`
		QueryShape    string   `json:"query_shape"`
		Updates       string   `json:"updates"`
		NativeDynamic bool     `json:"native_dynamic"`
		Reductions    []string `json:"reductions"`
	}
	var reductions []string
	for _, r := range topk.AllReductions() {
		reductions = append(reductions, r.String())
	}
	var out []problemInfo
	for _, spec := range topk.RegisteredProblems() {
		out = append(out, problemInfo{
			Name:          spec.Name,
			Dim:           spec.Dim,
			QueryShape:    spec.QueryShape,
			Updates:       spec.Updatable(),
			NativeDynamic: spec.NativeDynamic,
			Reductions:    reductions,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"problems": out})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.ix.WriteMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	// Persistence counters live at the server layer, not in the index's
	// metrics registry, so they are appended to the exposition here.
	warm := 0
	if s.warmStart {
		warm = 1
	}
	fmt.Fprintf(w, "# HELP topk_warm_start Whether this process restored its index from a snapshot (1) or built it cold (0).\n")
	fmt.Fprintf(w, "# TYPE topk_warm_start gauge\ntopk_warm_start %d\n", warm)
	fmt.Fprintf(w, "# HELP topk_restore_read_ios Simulated sequential read I/Os charged for the boot-time restore.\n")
	fmt.Fprintf(w, "# TYPE topk_restore_read_ios gauge\ntopk_restore_read_ios %d\n", s.restoreReads)
	fmt.Fprintf(w, "# HELP topk_checkpoints_total Snapshot checkpoints written by this process.\n")
	fmt.Fprintf(w, "# TYPE topk_checkpoints_total counter\ntopk_checkpoints_total %d\n", s.checkpoints.Value())
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 10000 {
		http.Error(w, "need 1..10000 queries", http.StatusBadRequest)
		return
	}
	if req.K <= 0 || req.K > 1000 {
		http.Error(w, "need 1 <= k <= 1000", http.StatusBadRequest)
		return
	}
	qs := make([]any, len(req.Queries))
	for i, raw := range req.Queries {
		q, err := s.ix.DecodeQuery(raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("query %d: %v", i, err), http.StatusBadRequest)
			return
		}
		qs[i] = q
	}
	p := req.Parallelism
	if p == 0 {
		p = s.parallelism
	}
	start := time.Now()
	res := s.ix.QueryBatch(qs, req.K, p)
	out := make([]queryResult, len(res))
	for i, r := range res {
		out[i] = queryResult{
			Items: make([]resultItem, 0, len(r.Items)),
			Reads: r.Stats.Reads, Wri: r.Stats.Writes, Hits: r.Stats.Hits, IOs: r.Stats.IOs(),
		}
		for _, it := range r.Items {
			out[i].Items = append(out[i].Items, resultItem{Weight: it.Weight, Label: it.Label})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"problem": s.problem,
		"shards":  s.shards,
		"k":       req.K,
		"elapsed": time.Since(start).String(),
		"results": out,
	})
}

func (s *server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	s.slow.dump(&b)
	if b.Len() == 0 {
		fmt.Fprintln(w, "no slow queries recorded")
		return
	}
	io.WriteString(w, b.String())
}
