// Command topk-serve exposes a live top-k index over HTTP: a /query
// endpoint backed by the concurrent QueryBatch path, a Prometheus
// /metrics endpoint, expvar and pprof debug surfaces, and a slow-query
// ring buffer at /debug/slow. It exists so the paper's I/O accounting
// can be watched from standard observability tooling while a workload
// runs.
//
// Usage:
//
//	topk-serve                       # interval index, n=20000, :8080
//	topk-serve -problem range -n 5e4
//	topk-serve -slow-ios 200         # log queries costing >= 200 I/Os
//
// Endpoints:
//
//	GET  /metrics      Prometheus text exposition
//	POST /query        {"queries":[...], "k":10} -> per-query answers + I/O stats
//	GET  /debug/slow   recent slow-query traces (plain text)
//	GET  /debug/vars   expvar JSON
//	GET  /debug/pprof  net/http/pprof profiles
//	GET  /healthz      liveness
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"strings"
	"sync"
	"time"

	"topk"
	"topk/internal/bench"
)

// server is the problem-independent part of the HTTP surface: every
// problem adapter plugs in as a queryFunc plus a WriteMetrics.
type server struct {
	problem string
	n       int
	metrics func(io.Writer) error
	query   func(qs []json.RawMessage, k, parallelism int) (any, error)
	slow    *ringWriter
	started time.Time
}

// queryRequest is the /query body. Queries are problem-shaped:
// interval: [x, ...]; range: [[lo, hi], ...].
type queryRequest struct {
	Queries     []json.RawMessage `json:"queries"`
	K           int               `json:"k"`
	Parallelism int               `json:"parallelism"`
}

// queryResult is one query's slice of the /query response.
type queryResult struct {
	Items []resultItem `json:"items"`
	Reads int64        `json:"reads"`
	Wri   int64        `json:"writes"`
	Hits  int64        `json:"hits"`
	IOs   int64        `json:"ios"`
}

type resultItem struct {
	Weight float64 `json:"weight"`
	Label  string  `json:"label,omitempty"`
}

// ringWriter retains the last few slow-query entries for /debug/slow.
// It is handed to WithSlowQueryLog as the io.Writer.
type ringWriter struct {
	mu      sync.Mutex
	entries []string
	next    int
}

func newRingWriter(keep int) *ringWriter {
	return &ringWriter{entries: make([]string, 0, keep)}
}

func (r *ringWriter) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := string(p)
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
	} else {
		r.entries[r.next] = e
		r.next = (r.next + 1) % cap(r.entries)
	}
	return len(p), nil
}

func (r *ringWriter) dump(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(r.entries); i++ {
		io.WriteString(w, r.entries[(r.next+i)%len(r.entries)])
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		problem     = flag.String("problem", "interval", "problem to serve: interval | range")
		n           = flag.Int("n", 20000, "number of indexed items")
		seed        = flag.Uint64("seed", 42, "workload seed")
		slowIOs     = flag.Int64("slow-ios", 500, "slow-query I/O threshold (0 disables)")
		parallelism = flag.Int("parallelism", 0, "default /query parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()

	slow := newRingWriter(64)
	srv, err := buildServer(*problem, *n, *seed, *slowIOs, *parallelism, slow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topk-serve: %v\n", err)
		os.Exit(1)
	}

	expvar.NewString("topk_problem").Set(*problem)
	expvar.NewInt("topk_items").Set(int64(*n))

	http.HandleFunc("/metrics", srv.handleMetrics)
	http.HandleFunc("/query", srv.handleQuery)
	http.HandleFunc("/debug/slow", srv.handleSlow)
	http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /debug/vars (expvar) and /debug/pprof are registered by their
	// packages' imports on the default mux.

	log.Printf("topk-serve: %s index over %d items on %s (slow-ios=%d)",
		*problem, *n, *addr, *slowIOs)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

// buildServer constructs the selected problem's index with full
// observability and returns the HTTP adapter around it.
func buildServer(problem string, n int, seed uint64, slowIOs int64, parallelism int, slow *ringWriter) (*server, error) {
	opts := []topk.Option{topk.WithSeed(seed), topk.WithTracing(), topk.WithMetrics()}
	if slowIOs > 0 {
		opts = append(opts, topk.WithSlowQueryLog(slow, slowIOs))
	}
	s := &server{problem: problem, n: n, slow: slow, started: time.Now()}

	switch problem {
	case "interval":
		src := bench.Intervals(seed, n, 8)
		items := make([]topk.IntervalItem[int], len(src))
		for i, it := range src {
			items[i] = topk.IntervalItem[int]{Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight, Data: i}
		}
		ix, err := topk.NewIntervalIndex(items, opts...)
		if err != nil {
			return nil, err
		}
		s.metrics = ix.WriteMetrics
		s.query = func(raw []json.RawMessage, k, p int) (any, error) {
			xs := make([]float64, len(raw))
			for i, r := range raw {
				if err := json.Unmarshal(r, &xs[i]); err != nil {
					return nil, fmt.Errorf("query %d: want a stabbing point (number): %w", i, err)
				}
			}
			if p == 0 {
				p = parallelism
			}
			res := ix.QueryBatch(xs, k, p)
			out := make([]queryResult, len(res))
			for i, r := range res {
				out[i] = toResult(r.Stats, len(r.Items))
				for _, it := range r.Items {
					out[i].Items = append(out[i].Items, resultItem{
						Weight: it.Weight,
						Label:  fmt.Sprintf("[%.3f, %.3f]", it.Lo, it.Hi),
					})
				}
			}
			return out, nil
		}
	case "range":
		ws := bench.Intervals(seed, n, 8) // reuse interval gen for distinct weights
		items := make([]topk.PointItem1[int], len(ws))
		for i, it := range ws {
			items[i] = topk.PointItem1[int]{Pos: it.Value.Lo, Weight: it.Weight, Data: i}
		}
		ix, err := topk.NewRangeIndex(items, opts...)
		if err != nil {
			return nil, err
		}
		s.metrics = ix.WriteMetrics
		s.query = func(raw []json.RawMessage, k, p int) (any, error) {
			spans := make([]topk.Span, len(raw))
			for i, r := range raw {
				var pair [2]float64
				if err := json.Unmarshal(r, &pair); err != nil {
					return nil, fmt.Errorf("query %d: want [lo, hi]: %w", i, err)
				}
				spans[i] = topk.Span{Lo: pair[0], Hi: pair[1]}
			}
			if p == 0 {
				p = parallelism
			}
			res := ix.QueryBatch(spans, k, p)
			out := make([]queryResult, len(res))
			for i, r := range res {
				out[i] = toResult(r.Stats, len(r.Items))
				for _, it := range r.Items {
					out[i].Items = append(out[i].Items, resultItem{
						Weight: it.Weight,
						Label:  fmt.Sprintf("%.3f", it.Pos),
					})
				}
			}
			return out, nil
		}
	default:
		return nil, fmt.Errorf("unknown problem %q (want interval or range)", problem)
	}
	return s, nil
}

func toResult(st topk.QueryStats, nItems int) queryResult {
	return queryResult{
		Items: make([]resultItem, 0, nItems),
		Reads: st.Reads, Wri: st.Writes, Hits: st.Hits, IOs: st.IOs(),
	}
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.metrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 10000 {
		http.Error(w, "need 1..10000 queries", http.StatusBadRequest)
		return
	}
	if req.K <= 0 || req.K > 1000 {
		http.Error(w, "need 1 <= k <= 1000", http.StatusBadRequest)
		return
	}
	start := time.Now()
	out, err := s.query(req.Queries, req.K, req.Parallelism)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"problem": s.problem,
		"k":       req.K,
		"elapsed": time.Since(start).String(),
		"results": out,
	})
}

func (s *server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	s.slow.dump(&b)
	if b.Len() == 0 {
		fmt.Fprintln(w, "no slow queries recorded")
		return
	}
	io.WriteString(w, b.String())
}
