// Command topk-serve exposes a live top-k index over HTTP: a /query
// endpoint backed by the concurrent QueryBatch path, a Prometheus
// /metrics endpoint, expvar and pprof debug surfaces, and a slow-query
// ring buffer at /debug/slow. It exists so the paper's I/O accounting
// can be watched from standard observability tooling while a workload
// runs.
//
// Every problem in the library's registry can be served; there is no
// per-problem code here. GET /problems lists what is available.
//
// Usage:
//
//	topk-serve                       # interval index, n=20000, :8080
//	topk-serve -problem dominance -n 5e4
//	topk-serve -slow-ios 200         # log queries costing >= 200 I/Os
//
// Endpoints:
//
//	GET  /metrics      Prometheus text exposition
//	GET  /problems     registered problems, query shapes, update support
//	POST /query        {"queries":[...], "k":10} -> per-query answers + I/O stats
//	GET  /debug/slow   recent slow-query traces (plain text)
//	GET  /debug/vars   expvar JSON
//	GET  /debug/pprof  net/http/pprof profiles
//	GET  /healthz      liveness
package main

import (
	"encoding/json"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux
	"os"
	"strings"
	"sync"
	"time"

	"topk"
)

// server is the HTTP surface around one Served index from the problem
// registry.
type server struct {
	problem     string
	n           int
	shards      int
	parallelism int
	ix          topk.Served
	slow        *ringWriter
	started     time.Time
}

// queryRequest is the /query body. Queries are problem-shaped; see
// GET /problems for each problem's wire shape.
type queryRequest struct {
	Queries     []json.RawMessage `json:"queries"`
	K           int               `json:"k"`
	Parallelism int               `json:"parallelism"`
}

// queryResult is one query's slice of the /query response.
type queryResult struct {
	Items []resultItem `json:"items"`
	Reads int64        `json:"reads"`
	Wri   int64        `json:"writes"`
	Hits  int64        `json:"hits"`
	IOs   int64        `json:"ios"`
}

type resultItem struct {
	Weight float64 `json:"weight"`
	Label  string  `json:"label,omitempty"`
}

// ringWriter retains the last few slow-query entries for /debug/slow.
// It is handed to WithSlowQueryLog as the io.Writer.
type ringWriter struct {
	mu      sync.Mutex
	entries []string
	next    int
}

func newRingWriter(keep int) *ringWriter {
	return &ringWriter{entries: make([]string, 0, keep)}
}

func (r *ringWriter) Write(p []byte) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e := string(p)
	if len(r.entries) < cap(r.entries) {
		r.entries = append(r.entries, e)
	} else {
		r.entries[r.next] = e
		r.next = (r.next + 1) % cap(r.entries)
	}
	return len(p), nil
}

func (r *ringWriter) dump(w io.Writer) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for i := 0; i < len(r.entries); i++ {
		io.WriteString(w, r.entries[(r.next+i)%len(r.entries)])
	}
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		problem     = flag.String("problem", "interval", "problem to serve: "+strings.Join(topk.ProblemNames(), " | "))
		n           = flag.Int("n", 20000, "number of indexed items")
		shards      = flag.Int("shards", 1, "partition the index across this many shards (parallel fan-out/merge)")
		seed        = flag.Uint64("seed", 42, "workload seed")
		slowIOs     = flag.Int64("slow-ios", 500, "slow-query I/O threshold (0 disables)")
		parallelism = flag.Int("parallelism", 0, "default /query parallelism (0 = GOMAXPROCS)")
	)
	flag.Parse()

	slow := newRingWriter(64)
	srv, err := buildServer(*problem, *n, *shards, *seed, *slowIOs, *parallelism, slow)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topk-serve: %v\n", err)
		os.Exit(1)
	}

	expvar.NewString("topk_problem").Set(*problem)
	expvar.NewInt("topk_items").Set(int64(*n))
	expvar.NewInt("topk_shards").Set(int64(srv.ix.Shards()))

	http.HandleFunc("/metrics", srv.handleMetrics)
	http.HandleFunc("/problems", handleProblems)
	http.HandleFunc("/query", srv.handleQuery)
	http.HandleFunc("/debug/slow", srv.handleSlow)
	http.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "ok")
	})
	// /debug/vars (expvar) and /debug/pprof are registered by their
	// packages' imports on the default mux.

	log.Printf("topk-serve: %s index over %d items in %d shard(s) on %s (slow-ios=%d)",
		*problem, *n, srv.ix.Shards(), *addr, *slowIOs)
	log.Fatal(http.ListenAndServe(*addr, nil))
}

// buildServer constructs the selected problem's index from the registry
// with full observability and returns the HTTP adapter around it. With
// shards > 1 the index is partitioned and every query fans out across
// the shards (metric series then carry a shard label).
func buildServer(problem string, n, shards int, seed uint64, slowIOs int64, parallelism int, slow *ringWriter) (*server, error) {
	spec, ok := topk.ProblemByName(problem)
	if !ok {
		return nil, fmt.Errorf("unknown problem %q (want one of: %s)", problem, strings.Join(topk.ProblemNames(), ", "))
	}
	opts := []topk.Option{topk.WithSeed(seed), topk.WithTracing(), topk.WithMetrics()}
	if slowIOs > 0 {
		opts = append(opts, topk.WithSlowQueryLog(slow, slowIOs))
	}
	var (
		ix  topk.Served
		err error
	)
	if shards > 1 {
		ix, err = spec.BuildSharded(n, shards, seed, opts...)
	} else {
		ix, err = spec.Build(n, seed, opts...)
	}
	if err != nil {
		return nil, err
	}
	return &server{problem: problem, n: n, shards: ix.Shards(), parallelism: parallelism, ix: ix, slow: slow, started: time.Now()}, nil
}

// handleProblems lists the registry: every problem any topk-serve binary
// can host, its JSON query shape, and its update support.
func handleProblems(w http.ResponseWriter, _ *http.Request) {
	type problemInfo struct {
		Name          string   `json:"name"`
		Dim           int      `json:"dim,omitempty"`
		QueryShape    string   `json:"query_shape"`
		Updates       string   `json:"updates"`
		NativeDynamic bool     `json:"native_dynamic"`
		Reductions    []string `json:"reductions"`
	}
	var reductions []string
	for _, r := range topk.AllReductions() {
		reductions = append(reductions, r.String())
	}
	var out []problemInfo
	for _, spec := range topk.RegisteredProblems() {
		out = append(out, problemInfo{
			Name:          spec.Name,
			Dim:           spec.Dim,
			QueryShape:    spec.QueryShape,
			Updates:       spec.Updatable(),
			NativeDynamic: spec.NativeDynamic,
			Reductions:    reductions,
		})
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"problems": out})
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.ix.WriteMetrics(w); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req queryRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	if len(req.Queries) == 0 || len(req.Queries) > 10000 {
		http.Error(w, "need 1..10000 queries", http.StatusBadRequest)
		return
	}
	if req.K <= 0 || req.K > 1000 {
		http.Error(w, "need 1 <= k <= 1000", http.StatusBadRequest)
		return
	}
	qs := make([]any, len(req.Queries))
	for i, raw := range req.Queries {
		q, err := s.ix.DecodeQuery(raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("query %d: %v", i, err), http.StatusBadRequest)
			return
		}
		qs[i] = q
	}
	p := req.Parallelism
	if p == 0 {
		p = s.parallelism
	}
	start := time.Now()
	res := s.ix.QueryBatch(qs, req.K, p)
	out := make([]queryResult, len(res))
	for i, r := range res {
		out[i] = queryResult{
			Items: make([]resultItem, 0, len(r.Items)),
			Reads: r.Stats.Reads, Wri: r.Stats.Writes, Hits: r.Stats.Hits, IOs: r.Stats.IOs(),
		}
		for _, it := range r.Items {
			out[i].Items = append(out[i].Items, resultItem{Weight: it.Weight, Label: it.Label})
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"problem": s.problem,
		"shards":  s.shards,
		"k":       req.K,
		"elapsed": time.Since(start).String(),
		"results": out,
	})
}

func (s *server) handleSlow(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	s.slow.dump(&b)
	if b.Len() == 0 {
		fmt.Fprintln(w, "no slow queries recorded")
		return
	}
	io.WriteString(w, b.String())
}
