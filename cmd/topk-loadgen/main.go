// Command topk-loadgen drives a running topk-serve instance at a
// sustained query rate and reports client-observed latency percentiles
// (p50/p99/p999) from an HDR-style log-bucketed histogram — the
// measurement half of the request-lifecycle experiment E31
// (latency vs. offered load, budgets on vs. off).
//
// Two loop disciplines are supported:
//
//   - open loop (-qps > 0): requests are scheduled on a fixed timetable
//     regardless of completions, the way independent clients arrive.
//     Latency is measured from the *scheduled* send time, so queueing
//     delay under saturation is charged to the server (no coordinated
//     omission).
//   - closed loop (-qps 0): -concurrency workers issue requests
//     back-to-back, measuring best-case service latency under exactly
//     that many outstanding requests.
//
// Queries come from the problem registry's wire-query generator, so the
// workload is a pure function of (-problem, -seed) and matches the
// distribution the server's own GenQueries would produce.
//
// Usage:
//
//	topk-loadgen -url http://localhost:8080 -problem interval -qps 200 -duration 10s
//	topk-loadgen -qps 500 -budget-ios 300 -degrade -out run_budget.json
//	topk-loadgen -merge -out E31.json run1.json run2.json ...
//
// With -out each run writes one JSON artifact; -merge assembles per-run
// artifacts into a single experiment file and, when runs with budgets
// on and off share a shard count, asserts that the budget-on p999 does
// not exceed the budget-off p999 (the tail-cutting claim the budget
// exists to enforce).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"topk"
	"topk/internal/obs"
)

// runConfig is everything one load run needs; it is echoed into the
// artifact so runs are self-describing.
type runConfig struct {
	URL         string  `json:"url"`
	Problem     string  `json:"problem"`
	Mode        string  `json:"mode"` // "open" or "closed"
	TargetQPS   float64 `json:"target_qps,omitempty"`
	Concurrency int     `json:"concurrency"`
	Duration    string  `json:"duration"`
	Warmup      string  `json:"warmup"`
	K           int     `json:"k"`
	Batch       int     `json:"batch"`
	Seed        uint64  `json:"seed"`
	BudgetIOs   int64   `json:"budget_ios"`
	DeadlineMS  int64   `json:"deadline_ms"`
	Degrade     bool    `json:"degrade"`
	Label       string  `json:"label,omitempty"`
}

// latencySummary is the histogram rendered to fixed quantiles, in
// microseconds (client-observed, per HTTP request).
type latencySummary struct {
	P50   int64 `json:"p50"`
	P99   int64 `json:"p99"`
	P999  int64 `json:"p999"`
	Max   int64 `json:"max"`
	Count int64 `json:"count"`
}

// runResult is one run's artifact.
type runResult struct {
	Experiment  string           `json:"experiment"`
	Config      runConfig        `json:"config"`
	Shards      int              `json:"shards"`
	Requests    int64            `json:"requests"`
	Errors      int64            `json:"errors"`
	AchievedQPS float64          `json:"achieved_qps"`
	Outcomes    map[string]int64 `json:"outcomes"`
	LatencyUS   latencySummary   `json:"latency_us"`
}

func main() {
	var (
		url         = flag.String("url", "http://localhost:8080", "target base URL(s), comma-separated to spread load round-robin (topk-serve or topk-node coordinators)")
		problem     = flag.String("problem", "interval", "problem whose wire queries to generate: "+strings.Join(topk.ProblemNames(), " | "))
		qps         = flag.Float64("qps", 0, "open-loop request rate (0 = closed loop)")
		concurrency = flag.Int("concurrency", 8, "worker connections")
		duration    = flag.Duration("duration", 10*time.Second, "measured run length (after warmup)")
		warmup      = flag.Duration("warmup", time.Second, "warmup length, excluded from the histogram")
		k           = flag.Int("k", 10, "top-k per query")
		batch       = flag.Int("batch", 1, "queries per /query request")
		seed        = flag.Uint64("seed", 42, "wire-query workload seed")
		budgetIOs   = flag.Int64("budget-ios", 0, "per-request budget_ios override (0 = server default, -1 = force off)")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-request deadline_ms override (0 = server default, -1 = force off)")
		degrade     = flag.Bool("degrade", false, "request top-1 degradation on abort")
		label       = flag.String("label", "", "run label echoed into the artifact")
		out         = flag.String("out", "", "write the run artifact (JSON) to this file instead of stdout")
		merge       = flag.Bool("merge", false, "merge mode: assemble the run artifacts given as arguments into one experiment file")
	)
	flag.Parse()

	if *merge {
		if err := mergeRuns(*out, flag.Args()); err != nil {
			fmt.Fprintf(os.Stderr, "topk-loadgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := runConfig{
		URL: *url, Problem: *problem, Concurrency: *concurrency,
		Duration: duration.String(), Warmup: warmup.String(),
		K: *k, Batch: *batch, Seed: *seed,
		BudgetIOs: *budgetIOs, DeadlineMS: *deadlineMS, Degrade: *degrade,
		Label: *label, Mode: "closed", TargetQPS: 0,
	}
	if *qps > 0 {
		cfg.Mode, cfg.TargetQPS = "open", *qps
	}
	res, err := run(cfg, *duration, *warmup)
	if err != nil {
		fmt.Fprintf(os.Stderr, "topk-loadgen: %v\n", err)
		os.Exit(1)
	}
	if err := writeArtifact(*out, res); err != nil {
		fmt.Fprintf(os.Stderr, "topk-loadgen: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "topk-loadgen: %s %s: %d requests (%.1f qps), p50=%dµs p99=%dµs p999=%dµs, %d errors\n",
		cfg.Problem, cfg.Mode, res.Requests, res.AchievedQPS,
		res.LatencyUS.P50, res.LatencyUS.P99, res.LatencyUS.P999, res.Errors)
}

// run executes one load run and aggregates its histogram.
func run(cfg runConfig, duration, warmup time.Duration) (*runResult, error) {
	spec, ok := topk.ProblemByName(cfg.Problem)
	if !ok {
		return nil, fmt.Errorf("unknown problem %q (want one of: %s)", cfg.Problem, strings.Join(topk.ProblemNames(), ", "))
	}

	// Pre-marshal a rotating pool of request bodies so the hot loop does
	// no JSON encoding of its own.
	const bodyPool = 512
	wire := spec.WireQueries(bodyPool*cfg.Batch, cfg.Seed)
	bodies := make([][]byte, bodyPool)
	for i := range bodies {
		req := map[string]any{
			"queries": wire[i*cfg.Batch : (i+1)*cfg.Batch],
			"k":       cfg.K,
		}
		if cfg.BudgetIOs != 0 {
			req["budget_ios"] = cfg.BudgetIOs
		}
		if cfg.DeadlineMS != 0 {
			req["deadline_ms"] = cfg.DeadlineMS
		}
		if cfg.Degrade {
			req["degrade"] = true
		}
		b, err := json.Marshal(req)
		if err != nil {
			return nil, err
		}
		bodies[i] = b
	}

	var (
		hist      = obs.NewLogHistogram()
		requests  atomic.Int64
		errors    atomic.Int64
		outcomeMu sync.Mutex
		outcomes  = map[string]int64{}
		shards    atomic.Int64
		client    = &http.Client{Timeout: 30 * time.Second}
		measureAt = time.Now().Add(warmup)
		deadline  = measureAt.Add(duration)
		seq       atomic.Int64
	)

	// -url accepts a comma-separated target list (e.g. several
	// coordinators fronting one cluster); requests round-robin over it.
	targets := strings.Split(cfg.URL, ",")
	for i := range targets {
		targets[i] = strings.TrimSpace(targets[i])
	}

	// shoot issues one request; start is the latency origin (scheduled
	// time under the open loop, send time under the closed loop).
	shoot := func(start time.Time) {
		n := int(seq.Add(1))
		body := bodies[n%bodyPool]
		resp, err := client.Post(targets[n%len(targets)]+"/query", "application/json", bytes.NewReader(body))
		now := time.Now()
		if now.Before(measureAt) {
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			return
		}
		requests.Add(1)
		if err != nil {
			errors.Add(1)
			return
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			errors.Add(1)
			return
		}
		var rr struct {
			Shards  int `json:"shards"`
			Results []struct {
				Outcome string `json:"outcome"`
			} `json:"results"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&rr); err != nil {
			errors.Add(1)
			return
		}
		hist.Observe(now.Sub(start).Nanoseconds())
		shards.Store(int64(rr.Shards))
		outcomeMu.Lock()
		for _, q := range rr.Results {
			o := q.Outcome
			if o == "" {
				o = "ok"
			}
			outcomes[o]++
		}
		outcomeMu.Unlock()
	}

	var wg sync.WaitGroup
	if cfg.Mode == "open" {
		// Open loop: a dispatcher emits scheduled send times at the target
		// rate into a deep queue; workers drain it. The queue is sized for
		// the whole run so the schedule never blocks — a saturated server
		// shows up as queueing delay in the histogram, not as a reduced
		// offered rate.
		interval := time.Duration(float64(time.Second) / cfg.TargetQPS)
		total := int(float64(warmup+duration)/float64(interval)) + 1
		ticks := make(chan time.Time, total)
		go func() {
			t := time.NewTicker(interval)
			defer t.Stop()
			for i := 0; i < total; i++ {
				tick := <-t.C
				ticks <- tick
			}
			close(ticks)
		}()
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for tick := range ticks {
					if time.Now().After(deadline) {
						return
					}
					shoot(tick)
				}
			}()
		}
	} else {
		for w := 0; w < cfg.Concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for time.Now().Before(deadline) {
					shoot(time.Now())
				}
			}()
		}
	}
	wg.Wait()

	n := requests.Load()
	res := &runResult{
		Experiment: "E31",
		Config:     cfg,
		Shards:     int(shards.Load()),
		Requests:   n,
		Errors:     errors.Load(),
		Outcomes:   outcomes,
		AchievedQPS: float64(n-errors.Load()) /
			duration.Seconds(),
		LatencyUS: latencySummary{
			P50:   hist.Quantile(0.5) / 1e3,
			P99:   hist.Quantile(0.99) / 1e3,
			P999:  hist.Quantile(0.999) / 1e3,
			Max:   hist.Max() / 1e3,
			Count: hist.Count(),
		},
	}
	if res.LatencyUS.Count == 0 {
		return nil, fmt.Errorf("no successful requests measured (is %s serving problem %q?)", cfg.URL, cfg.Problem)
	}
	return res, nil
}

// experimentFile is the merged E31 artifact.
type experimentFile struct {
	Experiment  string      `json:"experiment"`
	Description string      `json:"description"`
	Runs        []runResult `json:"runs"`
}

// mergeRuns assembles per-run artifacts into one experiment file and
// enforces the budget-tail invariant: within a shard count, the p999 of
// budget-on runs must not exceed the p999 of budget-off runs.
func mergeRuns(out string, files []string) error {
	if len(files) == 0 {
		return fmt.Errorf("merge mode needs run artifact files as arguments")
	}
	ex := experimentFile{
		Experiment:  "E31",
		Description: "Latency vs. sustained QPS under the request lifecycle: client-observed p50/p99/p999 per shard count, I/O budgets on vs. off.",
	}
	for _, f := range files {
		b, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		var r runResult
		if err := json.Unmarshal(b, &r); err != nil {
			return fmt.Errorf("%s: %w", f, err)
		}
		ex.Runs = append(ex.Runs, r)
	}
	// offP999/onP999 track the worst budget-off and budget-on tail per
	// shard count.
	offP999, onP999 := map[int]int64{}, map[int]int64{}
	for _, r := range ex.Runs {
		m := offP999
		if r.Config.BudgetIOs > 0 {
			m = onP999
		}
		if p := r.LatencyUS.P999; p > m[r.Shards] {
			m[r.Shards] = p
		}
	}
	for shards, on := range onP999 {
		if off, ok := offP999[shards]; ok && on > off {
			return fmt.Errorf("budget-tail regression at %d shard(s): budget-on p999 %dµs > budget-off p999 %dµs", shards, on, off)
		}
	}
	return writeArtifact(out, ex)
}

// writeArtifact writes v as indented JSON to path ("" = stdout).
func writeArtifact(path string, v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
