// Command topk-bench regenerates the experiment tables recorded in
// EXPERIMENTS.md: one experiment per theorem/lemma of Rahul & Tao (PODS
// 2016), as indexed in DESIGN.md §5.
//
// Usage:
//
//	topk-bench                 # run every experiment (full sweeps)
//	topk-bench -exp E4,E5      # run selected experiments
//	topk-bench -quick          # ~8x smaller sweeps
//	topk-bench -list           # list experiment IDs and titles
//	topk-bench -seed 7         # change the workload seed
//	topk-bench -metrics -      # Prometheus snapshot of a reference workload to stdout
//	topk-bench -metrics m.prom # ... or to a file
//	topk-bench -io-json b.json # benchmark-regression snapshot (see cmd/benchdiff)
//	topk-bench -disk -io-json b.json # ... plus disk-backed real-I/O rows (E30 family)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"topk/internal/bench"
)

func main() {
	var (
		exp     = flag.String("exp", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "run reduced sweeps")
		seed    = flag.Uint64("seed", 42, "workload seed")
		list    = flag.Bool("list", false, "list experiments and exit")
		metrics = flag.String("metrics", "", "run an instrumented reference workload and write its Prometheus snapshot to this file (\"-\" = stdout), then exit")
		ioJSON  = flag.String("io-json", "", "run the pinned regression workload and write its JSON snapshot to this file (\"-\" = stdout), then exit")
		disk    = flag.Bool("disk", false, "with -io-json: rebuild the workload on the disk-backed block store and add \"disk/...\" rows counting physical preads+pwrites")
	)
	flag.Parse()

	if *ioJSON != "" {
		out := os.Stdout
		if *ioJSON != "-" {
			f, err := os.Create(*ioJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "topk-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.WriteRegressJSON(out, bench.Config{Seed: *seed, Disk: *disk}); err != nil {
			fmt.Fprintf(os.Stderr, "topk-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *metrics != "" {
		out := os.Stdout
		if *metrics != "-" {
			f, err := os.Create(*metrics)
			if err != nil {
				fmt.Fprintf(os.Stderr, "topk-bench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := bench.MetricsSnapshot(out, bench.Config{Seed: *seed, Quick: *quick}); err != nil {
			fmt.Fprintf(os.Stderr, "topk-bench: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range bench.IDs() {
			title, _ := bench.Title(id)
			fmt.Printf("%-4s %s\n", id, title)
		}
		return
	}

	ids := bench.IDs()
	if *exp != "" {
		ids = nil
		for _, id := range strings.Split(*exp, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	cfg := bench.Config{Seed: *seed, Quick: *quick}
	fmt.Printf("# topk experiment tables (seed=%d quick=%v)\n\n", *seed, *quick)
	for _, id := range ids {
		start := time.Now()
		if err := bench.Run(id, os.Stdout, cfg); err != nil {
			fmt.Fprintf(os.Stderr, "topk-bench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("_%s completed in %v_\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
