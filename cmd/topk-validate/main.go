// Command topk-validate runs high-trial-count empirical validations of the
// paper's probabilistic lemmas (Lemmas 1–3), independent of the
// experiment harness's default trial counts.
//
// Usage:
//
//	topk-validate -trials 200000 -seed 7
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"topk/internal/core"
	"topk/internal/wrand"
)

func main() {
	var (
		trials = flag.Int("trials", 100000, "trials per parameter cell")
		seed   = flag.Uint64("seed", 1, "RNG seed")
	)
	flag.Parse()
	g := wrand.New(*seed)
	failures := 0

	fmt.Printf("Lemma 1 (rank sampling), %d trials per cell\n", *trials)
	fmt.Printf("%-10s %-8s %-8s %-8s %-12s %s\n", "n", "k", "p", "δ", "failure", "verdict")
	for _, lp := range []core.Lemma1Params{
		{N: 100000, K: 500, P: 0.05, Delta: 0.10},
		{N: 100000, K: 1000, P: 0.03, Delta: 0.10},
		{N: 200000, K: 5000, P: 0.01, Delta: 0.05},
		{N: 400000, K: 20000, P: 0.002, Delta: 0.30},
		{N: 1000000, K: 50000, P: 0.001, Delta: 0.20},
	} {
		if !lp.Applicable() {
			fmt.Printf("%-10d %-8d %-8g %-8g %-12s cell outside lemma conditions\n", lp.N, lp.K, lp.P, lp.Delta, "-")
			continue
		}
		fail := 0
		for i := 0; i < *trials; i++ {
			if !core.Lemma1Trial(g, lp) {
				fail++
			}
		}
		rate := float64(fail) / float64(*trials)
		verdict := "ok"
		if rate > lp.Delta {
			verdict = "VIOLATED"
			failures++
		}
		fmt.Printf("%-10d %-8d %-8g %-8g %-12.5f %s (bound %g)\n", lp.N, lp.K, lp.P, lp.Delta, rate, verdict, lp.Delta)
	}

	fmt.Printf("\nLemma 3 ((1/K)-sample max rank), %d trials per cell\n", *trials)
	fmt.Printf("%-10s %-10s %-12s %s\n", "K", "n", "success", "verdict")
	for _, k := range []float64{2, 8, 64, 512, 4096, 32768} {
		n := int(16 * k)
		succ := 0
		for i := 0; i < *trials; i++ {
			if core.Lemma3Trial(g, n, k) {
				succ++
			}
		}
		rate := float64(succ) / float64(*trials)
		verdict := "ok"
		if rate < 0.09 {
			verdict = "VIOLATED"
			failures++
		}
		fmt.Printf("%-10g %-10d %-12.5f %s (bound 0.09)\n", k, n, rate, verdict)
	}

	fmt.Printf("\nLemma 2 (core-set size), 50 draws per cell\n")
	fmt.Printf("%-10s %-10s %-14s %-14s %s\n", "n", "K", "mean |R|", "bound", "verdict")
	for _, n := range []int{1 << 14, 1 << 17, 1 << 20} {
		k := float64(n) / 128
		cp := core.CoreSetParams{N: n, K: k, Lambda: 2}
		items := make([]core.Item[int], n)
		for i := range items {
			items[i].Weight = float64(i)
		}
		total := 0
		const draws = 50
		over := 0
		for d := 0; d < draws; d++ {
			r := core.CoreSet(g, items, cp)
			total += len(r)
			if float64(len(r)) > cp.MaxSize() {
				over++
			}
		}
		verdict := "ok"
		if over > 0 {
			verdict = "VIOLATED" // CoreSet resamples until within bound
			failures++
		}
		fmt.Printf("%-10d %-10.0f %-14.0f %-14.0f %s\n", n, k, float64(total)/draws, math.Ceil(cp.MaxSize()), verdict)
	}

	if failures > 0 {
		fmt.Printf("\n%d bound violations\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall bounds hold")
}
