// Command benchdiff compares two benchmark-regression snapshots
// produced by `topk-bench -io-json` (see internal/bench/regress.go) and
// enforces the CI cost gate:
//
//	benchdiff BASELINE.json CURRENT.json
//
// I/O rows are deterministic simulated costs, so the rules are strict:
// any key present in the baseline must still exist, and its I/O count
// must not increase. An intended cost change ships with a regenerated
// baseline (make bench-json writes BENCH_PR<n>.json) in the same PR, so
// the diff against the new baseline is clean again. Decreases and new
// keys are reported but pass. Wall rows (ns/op) are machine-dependent
// and report-only. On failure every violation is rendered as one
// aligned baseline/current/delta table, so a CI log shows the whole
// shape of a regression at a glance.
//
// Exit status: 0 clean, 1 regression, 2 usage or unreadable input.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"topk/internal/bench"
)

func load(path string) (*bench.RegressReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.RegressReport
	if err := json.Unmarshal(b, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Schema != bench.RegressSchema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, rep.Schema, bench.RegressSchema)
	}
	return &rep, nil
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff BASELINE.json CURRENT.json")
		os.Exit(2)
	}
	base, err := load(os.Args[1])
	if err == nil {
		var cur *bench.RegressReport
		if cur, err = load(os.Args[2]); err == nil {
			os.Exit(diff(base, cur))
		}
	}
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}

func diff(base, cur *bench.RegressReport) int {
	if base.Seed != cur.Seed || base.N != cur.N || base.NQ != cur.NQ || base.K != cur.K {
		fmt.Fprintf(os.Stderr, "benchdiff: workload mismatch: baseline (seed=%d n=%d nq=%d k=%d) vs current (seed=%d n=%d nq=%d k=%d)\n",
			base.Seed, base.N, base.NQ, base.K, cur.Seed, cur.N, cur.NQ, cur.K)
		return 1
	}

	curIO := make(map[string]bench.IORow, len(cur.IO))
	for _, r := range cur.IO {
		curIO[r.Key] = r
	}
	var fails []failRow
	for _, b := range base.IO {
		c, ok := curIO[b.Key]
		switch {
		case !ok:
			fails = append(fails, failRow{key: b.Key, what: "dropped", base: b.IOs, cur: -1})
		case c.IOs > b.IOs:
			fails = append(fails, failRow{key: b.Key, what: "I/Os", base: b.IOs, cur: c.IOs})
		case c.IOs < b.IOs:
			fmt.Printf("ok   %-44s I/Os %d -> %d (improved)\n", b.Key, b.IOs, c.IOs)
		}
		if ok && c.Items != b.Items {
			fails = append(fails, failRow{key: b.Key, what: "items", base: b.Items, cur: c.Items})
		}
		delete(curIO, b.Key)
	}
	var added []string
	for k := range curIO {
		added = append(added, k)
	}
	sort.Strings(added)
	for _, k := range added {
		fmt.Printf("new  %-44s I/Os %d (no baseline; passes)\n", k, curIO[k].IOs)
	}

	baseWall := make(map[string]int64, len(base.Wall))
	for _, r := range base.Wall {
		baseWall[r.Key] = r.NsOp
	}
	for _, r := range cur.Wall {
		if b, ok := baseWall[r.Key]; ok && b > 0 {
			fmt.Printf("info %-44s %d ns/op (baseline %d, %+.1f%%, report-only)\n",
				r.Key, r.NsOp, b, 100*float64(r.NsOp-b)/float64(b))
		} else {
			fmt.Printf("info %-44s %d ns/op (no baseline, report-only)\n", r.Key, r.NsOp)
		}
	}

	if len(fails) > 0 {
		printFailTable(fails)
		fmt.Printf("benchdiff: %d regression(s); if intended, regenerate the baseline with `make bench-json` and commit it\n", len(fails))
		return 1
	}
	fmt.Printf("benchdiff: %d I/O rows clean\n", len(base.IO))
	return 0
}

// failRow is one gate violation. cur == -1 marks a key dropped from the
// current snapshot; what says which measure moved ("I/Os", "items").
type failRow struct {
	key  string
	what string
	base int64
	cur  int64
}

// printFailTable renders every violation as one aligned delta table, so
// a failing CI log shows the whole shape of a regression at a glance
// instead of only the first offending key.
func printFailTable(fails []failRow) {
	keyW := len("KEY")
	for _, f := range fails {
		if len(f.key) > keyW {
			keyW = len(f.key)
		}
	}
	fmt.Printf("\nFAIL %-*s %-7s %12s %12s %16s\n", keyW, "KEY", "WHAT", "BASELINE", "CURRENT", "DELTA")
	for _, f := range fails {
		if f.cur < 0 {
			fmt.Printf("FAIL %-*s %-7s %12d %12s %16s\n", keyW, f.key, f.what, f.base, "-", "dropped")
			continue
		}
		delta := f.cur - f.base
		pct := ""
		if f.base != 0 {
			pct = fmt.Sprintf(" (%+.1f%%)", 100*float64(delta)/float64(f.base))
		}
		fmt.Printf("FAIL %-*s %-7s %12d %12d %+10d%s\n", keyW, f.key, f.what, f.base, f.cur, delta, pct)
	}
	fmt.Println()
}
