package topk

import (
	"fmt"
	"math"
	"testing"
)

// This file is the registry-driven conformance suite: every contract here
// is asserted for every registered problem by iterating
// RegisteredProblems(), so a ninth problem is covered the moment its
// ProblemSpec is added — no per-problem test copies to maintain.

const (
	confN     = 300 // items per conformance build
	confSeed  = 7   // workload seed
	confQSeed = 99  // query seed
)

func servedWeights(items []ServedItem) []float64 {
	ws := make([]float64, len(items))
	for i, it := range items {
		ws[i] = it.Weight
	}
	return ws
}

func weightSet(items []ServedItem) map[float64]bool {
	s := make(map[float64]bool, len(items))
	for _, it := range items {
		s[it.Weight] = true
	}
	return s
}

// TestConformanceQueries checks, for every problem × reduction, that the
// reduction's answers agree with the FullScan oracle: TopK is the
// oracle's k-prefix, Max is TopK with k = 1, and ReportAbove returns
// exactly the oracle items at or above the threshold.
func TestConformanceQueries(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for _, r := range AllReductions() {
			t.Run(fmt.Sprintf("%s/%v", spec.Name, r), func(t *testing.T) {
				sv, err := spec.Build(confN, confSeed, WithReduction(r))
				if err != nil {
					t.Fatal(err)
				}
				if sv.Len() != confN {
					t.Fatalf("Len() = %d, want %d", sv.Len(), confN)
				}
				for qi, q := range sv.GenQueries(10, confQSeed) {
					oracle := sv.Oracle(q)
					for _, k := range []int{1, 3, 10, confN} {
						got := servedWeights(sv.TopK(q, k))
						want := servedWeights(oracle)
						if k < len(want) {
							want = want[:k]
						}
						if len(got) != len(want) {
							t.Fatalf("q%d k=%d: got %d items, want %d", qi, k, len(got), len(want))
						}
						for i := range got {
							if got[i] != want[i] {
								t.Fatalf("q%d k=%d item %d: weight %v, want %v", qi, k, i, got[i], want[i])
							}
						}
					}

					// Max ≡ TopK(·, 1).
					m, ok := sv.Max(q)
					if ok != (len(oracle) > 0) {
						t.Fatalf("q%d: Max ok=%v with %d matching items", qi, ok, len(oracle))
					}
					if ok && m.Weight != oracle[0].Weight {
						t.Fatalf("q%d: Max = %v, want %v", qi, m.Weight, oracle[0].Weight)
					}

					// ReportAbove at a threshold cut from the oracle list, at
					// -Inf (everything), and above the maximum (nothing).
					taus := []float64{math.Inf(-1), math.Inf(1)}
					if len(oracle) > 0 {
						taus = append(taus, oracle[(len(oracle)-1)/2].Weight)
					}
					for _, tau := range taus {
						got := weightSet(sv.ReportAbove(q, tau))
						want := 0
						for _, it := range oracle {
							if it.Weight >= tau {
								want++
								if !got[it.Weight] {
									t.Fatalf("q%d tau=%v: weight %v missing from ReportAbove", qi, tau, it.Weight)
								}
							}
						}
						if len(got) != want {
							t.Fatalf("q%d tau=%v: ReportAbove returned %d items, want %d", qi, tau, len(got), want)
						}
					}
				}
			})
		}
	}
}

// TestConformanceBatchMatchesSerial checks, for every problem, that
// QueryBatch returns identical per-query answers and identical per-query
// cold-cache I/O stats at parallelism 1 and parallelism 4 — the
// determinism contract the concurrent serving path is built on.
func TestConformanceBatchMatchesSerial(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		t.Run(spec.Name, func(t *testing.T) {
			sv, err := spec.Build(confN, confSeed)
			if err != nil {
				t.Fatal(err)
			}
			qs := sv.GenQueries(12, confQSeed)
			serial := sv.QueryBatch(qs, 5, 1)
			parallel := sv.QueryBatch(qs, 5, 4)
			for i := range qs {
				a, b := serial[i], parallel[i]
				if a.Stats != b.Stats {
					t.Fatalf("q%d: stats %+v (serial) != %+v (parallel)", i, a.Stats, b.Stats)
				}
				if len(a.Items) != len(b.Items) {
					t.Fatalf("q%d: %d items (serial) != %d (parallel)", i, len(a.Items), len(b.Items))
				}
				for j := range a.Items {
					if a.Items[j].Weight != b.Items[j].Weight {
						t.Fatalf("q%d item %d: %v (serial) != %v (parallel)", i, j, a.Items[j].Weight, b.Items[j].Weight)
					}
				}
				// Per-query stats also match a dedicated single-query run.
				single := sv.QueryBatch(qs[i:i+1], 5, 1)
				if single[0].Stats != a.Stats {
					t.Fatalf("q%d: stats %+v (single) != %+v (batch)", i, single[0].Stats, a.Stats)
				}
			}
		})
	}
}

// TestConformanceStaticUpdateContract checks, for every problem ×
// reduction, that an index built without WithUpdates rejects Insert and
// Delete with an error — except on the native-dynamic Expected path,
// where updates must succeed and be visible to queries.
func TestConformanceStaticUpdateContract(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for _, r := range AllReductions() {
			t.Run(fmt.Sprintf("%s/%v", spec.Name, r), func(t *testing.T) {
				sv, err := spec.Build(50, confSeed, WithReduction(r))
				if err != nil {
					t.Fatal(err)
				}
				if spec.NativeDynamic && r == Expected {
					w, err := sv.InsertFresh(11)
					if err != nil {
						t.Fatalf("native-dynamic Insert: %v", err)
					}
					if sv.Len() != 51 {
						t.Fatalf("Len() = %d after Insert", sv.Len())
					}
					ok, err := sv.Delete(w)
					if err != nil || !ok {
						t.Fatalf("Delete(%v) = (%v, %v)", w, ok, err)
					}
					return
				}
				if _, err := sv.InsertFresh(11); err == nil {
					t.Fatal("static index accepted Insert")
				}
				if _, err := sv.Delete(1); err == nil {
					t.Fatal("static index accepted Delete")
				}
				// Rejected updates must not damage the structure.
				q := sv.GenQueries(1, confQSeed)[0]
				if got, want := len(sv.TopK(q, 50)), len(sv.Oracle(q)); got != want {
					t.Fatalf("index damaged by rejected updates: %d items, want %d", got, want)
				}
			})
		}
	}
}

// TestConformanceUpdatableContract checks every problem's overlay path:
// with WithUpdates, fresh inserts land and are queryable, invalid inserts
// and duplicate weights are rejected without damage, and Delete of an
// absent weight reports (false, nil).
func TestConformanceUpdatableContract(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		t.Run(spec.Name, func(t *testing.T) {
			sv, err := spec.Build(50, confSeed, WithReduction(WorstCase), WithUpdates())
			if err != nil {
				t.Fatal(err)
			}
			w, err := sv.InsertFresh(23)
			if err != nil {
				t.Fatalf("InsertFresh: %v", err)
			}
			if sv.Len() != 51 {
				t.Fatalf("Len() = %d after Insert", sv.Len())
			}
			if err := sv.InsertInvalid(); err == nil {
				t.Fatal("invalid item accepted by Insert")
			}
			if ok, err := sv.Delete(w - 1e12); err != nil || ok {
				t.Fatalf("Delete(absent) = (%v, %v)", ok, err)
			}
			if ok, err := sv.Delete(w); err != nil || !ok {
				t.Fatalf("Delete(%v) = (%v, %v)", w, ok, err)
			}
			if sv.Len() != 50 {
				t.Fatalf("Len() = %d after Delete", sv.Len())
			}
		})
	}
}

// confShardCounts are the partition widths the sharded conformance
// sweep runs at: the degenerate single shard, the smallest real
// partition, and one wider than the item count ever divides evenly.
var confShardCounts = []int{1, 2, 8}

// TestConformanceSharded checks, for every problem × reduction × shard
// count, that a sharded index is answer-equivalent to a single-engine
// index over the same items: TopK (at several k), Max, and ReportAbove
// all agree with the unsharded FullScan oracle — the Lemma 2 merge
// contract the sharding layer is built on.
func TestConformanceSharded(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		// The single-engine ground truth, shared across reductions.
		oracle, err := spec.Build(confN, confSeed, WithReduction(FullScan))
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range AllReductions() {
			for _, shards := range confShardCounts {
				t.Run(fmt.Sprintf("%s/%v/shards=%d", spec.Name, r, shards), func(t *testing.T) {
					sv, err := spec.BuildSharded(confN, shards, confSeed, WithReduction(r))
					if err != nil {
						t.Fatal(err)
					}
					if sv.Shards() != shards {
						t.Fatalf("Shards() = %d, want %d", sv.Shards(), shards)
					}
					if sv.Len() != confN {
						t.Fatalf("Len() = %d, want %d", sv.Len(), confN)
					}
					sizes, total := sv.ShardSizes(), 0
					if len(sizes) != shards {
						t.Fatalf("ShardSizes() has %d entries, want %d", len(sizes), shards)
					}
					for _, s := range sizes {
						total += s
					}
					if total != confN {
						t.Fatalf("ShardSizes() sums to %d, want %d: %v", total, confN, sizes)
					}
					for qi, q := range sv.GenQueries(6, confQSeed) {
						want := oracle.Oracle(q)
						for _, k := range []int{1, 5, confN} {
							got := servedWeights(sv.TopK(q, k))
							ww := servedWeights(want)
							if k < len(ww) {
								ww = ww[:k]
							}
							if len(got) != len(ww) {
								t.Fatalf("q%d k=%d: got %d items, want %d", qi, k, len(got), len(ww))
							}
							for i := range got {
								if got[i] != ww[i] {
									t.Fatalf("q%d k=%d item %d: weight %v, want %v", qi, k, i, got[i], ww[i])
								}
							}
						}
						m, ok := sv.Max(q)
						if ok != (len(want) > 0) {
							t.Fatalf("q%d: Max ok=%v with %d matching items", qi, ok, len(want))
						}
						if ok && m.Weight != want[0].Weight {
							t.Fatalf("q%d: Max = %v, want %v", qi, m.Weight, want[0].Weight)
						}
						if len(want) > 0 {
							tau := want[(len(want)-1)/2].Weight
							got := weightSet(sv.ReportAbove(q, tau))
							n := 0
							for _, it := range want {
								if it.Weight >= tau {
									n++
									if !got[it.Weight] {
										t.Fatalf("q%d: weight %v missing from sharded ReportAbove", qi, it.Weight)
									}
								}
							}
							if len(got) != n {
								t.Fatalf("q%d: sharded ReportAbove returned %d items, want %d", qi, len(got), n)
							}
						}
					}
				})
			}
		}
	}
}

// TestConformanceShardedBatch checks that a sharded QueryBatch keeps the
// serving determinism contract: per-query answers and summed per-shard
// cold-cache stats are identical at parallelism 1 and 4, and identical
// to a dedicated single-query batch.
func TestConformanceShardedBatch(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		t.Run(spec.Name, func(t *testing.T) {
			sv, err := spec.BuildSharded(confN, 2, confSeed)
			if err != nil {
				t.Fatal(err)
			}
			qs := sv.GenQueries(10, confQSeed)
			serial := sv.QueryBatch(qs, 5, 1)
			parallel := sv.QueryBatch(qs, 5, 4)
			for i := range qs {
				a, b := serial[i], parallel[i]
				if a.Stats != b.Stats {
					t.Fatalf("q%d: stats %+v (serial) != %+v (parallel)", i, a.Stats, b.Stats)
				}
				if len(a.Items) != len(b.Items) {
					t.Fatalf("q%d: %d items (serial) != %d (parallel)", i, len(a.Items), len(b.Items))
				}
				for j := range a.Items {
					if a.Items[j].Weight != b.Items[j].Weight {
						t.Fatalf("q%d item %d: %v (serial) != %v (parallel)", i, j, a.Items[j].Weight, b.Items[j].Weight)
					}
				}
				single := sv.QueryBatch(qs[i:i+1], 5, 1)
				if single[0].Stats != a.Stats {
					t.Fatalf("q%d: stats %+v (single) != %+v (batch)", i, single[0].Stats, a.Stats)
				}
			}
		})
	}
}

// TestConformanceShardedUpdates checks update routing on the sharded
// path: inserts land in exactly one shard (sizes sum to Len), deletes
// find their owner from any shard, the cross-shard duplicate-weight
// gate holds, and static reductions still reject updates.
func TestConformanceShardedUpdates(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		t.Run(spec.Name, func(t *testing.T) {
			sv, err := spec.BuildSharded(50, 3, confSeed, WithReduction(WorstCase), WithUpdates())
			if err != nil {
				t.Fatal(err)
			}
			var weights []float64
			for i := 0; i < 12; i++ {
				w, err := sv.InsertFresh(uint64(100 + i))
				if err != nil {
					t.Fatalf("InsertFresh %d: %v", i, err)
				}
				weights = append(weights, w)
			}
			if sv.Len() != 62 {
				t.Fatalf("Len() = %d after 12 inserts", sv.Len())
			}
			total := 0
			for _, s := range sv.ShardSizes() {
				total += s
			}
			if total != 62 {
				t.Fatalf("ShardSizes() sums to %d, want 62: %v", total, sv.ShardSizes())
			}
			if err := sv.InsertInvalid(); err == nil {
				t.Fatal("sharded Insert accepted the malformed item")
			}
			// Every inserted weight must be findable and deletable exactly once.
			for _, w := range weights {
				if ok, err := sv.Delete(w); err != nil || !ok {
					t.Fatalf("Delete(%v) = (%v, %v)", w, ok, err)
				}
				if ok, err := sv.Delete(w); err != nil || ok {
					t.Fatalf("second Delete(%v) = (%v, %v), want (false, nil)", w, ok, err)
				}
			}
			if sv.Len() != 50 {
				t.Fatalf("Len() = %d after deletes", sv.Len())
			}
			// Post-churn answers still match the oracle.
			q := sv.GenQueries(1, confQSeed)[0]
			got, want := servedWeights(sv.TopK(q, 50)), servedWeights(sv.Oracle(q))
			if len(want) > 50 {
				want = want[:50]
			}
			if len(got) != len(want) {
				t.Fatalf("post-churn TopK: %d items, want %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("post-churn TopK item %d: %v, want %v", i, got[i], want[i])
				}
			}

			// Static reductions reject updates behind any shard count.
			static, err := spec.BuildSharded(20, 2, confSeed, WithReduction(WorstCase))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := static.InsertFresh(5); err == nil {
				t.Fatal("static sharded index accepted Insert")
			}
			if _, err := static.Delete(1); err == nil {
				t.Fatal("static sharded index accepted Delete")
			}
		})
	}
}

// TestConformanceValidationSymmetry is the regression test for the
// constructor/Insert validation asymmetry: for every problem, the
// constructor must reject exactly the malformed items Insert rejects —
// both paths run the engine's single validation gate.
func TestConformanceValidationSymmetry(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		t.Run(spec.Name, func(t *testing.T) {
			for _, r := range AllReductions() {
				if err := spec.BuildInvalid(WithReduction(r)); err == nil {
					t.Fatalf("%v: constructor accepted an item Insert rejects", r)
				}
			}
			sv, err := spec.Build(20, confSeed, WithUpdates())
			if err != nil {
				t.Fatal(err)
			}
			if err := sv.InsertInvalid(); err == nil {
				t.Fatal("Insert accepted the malformed item")
			}
			if sv.Len() != 20 {
				t.Fatalf("Len() = %d after rejected updates", sv.Len())
			}
		})
	}
}
