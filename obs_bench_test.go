package topk

import (
	"testing"

	"topk/internal/wrand"
)

// BenchmarkTraceOverhead measures the observability tax on the query hot
// path. The "off" case is the guard: with no trace sink installed the
// span hooks must add zero allocations per query (each BeginSpan is one
// atomic load), so plain builds pay nothing for the instrumentation
// compiled into the reductions. Compare off vs on ns/op to see the cost
// of full tracing+metrics; `make bench` runs both.
func BenchmarkTraceOverhead(b *testing.B) {
	g := wrand.New(301)
	items := genIntervalItems(g, 2000)
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = g.Float64() * 120
	}

	run := func(b *testing.B, opts ...Option) {
		base := []Option{WithReduction(Expected), WithSeed(5)}
		ix, err := NewIntervalIndex(items, append(base, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the shared cache so steady-state queries allocate only
		// what TopK itself allocates (result slices).
		for _, x := range xs {
			ix.TopK(x, 8)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.TopK(xs[i%len(xs)], 8)
		}
	}

	var off, on testing.BenchmarkResult
	b.Run("off", func(b *testing.B) {
		run(b)
		off = testing.BenchmarkResult{N: b.N}
	})
	b.Run("on", func(b *testing.B) {
		run(b, WithTracing(), WithMetrics())
		on = testing.BenchmarkResult{N: b.N}
	})
	_ = off
	_ = on
}

// TestTraceOffZeroAllocOverhead is the CI-enforceable form of the
// benchmark: a query on a plain build must allocate exactly as many
// objects as the same query on a fully instrumented build, i.e. the
// span hooks and metrics collector add zero allocations per query on
// the shared path (the off path's per-span cost — one atomic load — is
// pinned separately by internal/em's TestSpanOffPathZeroAlloc).
func TestTraceOffZeroAllocOverhead(t *testing.T) {
	g := wrand.New(302)
	items := genIntervalItems(g, 1000)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = g.Float64() * 120
	}
	measure := func(opts ...Option) float64 {
		base := []Option{WithReduction(Expected), WithSeed(5)}
		ix, err := NewIntervalIndex(items, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs { // warm shared cache
			ix.TopK(x, 8)
		}
		i := 0
		return testing.AllocsPerRun(200, func() {
			ix.TopK(xs[i%len(xs)], 8)
			i++
		})
	}
	plain := measure()
	traced := measure(WithTracing(), WithMetrics())
	if traced != plain {
		t.Fatalf("instrumented TopK allocates %v objects/op, plain %v; observability must add zero", traced, plain)
	}
}
