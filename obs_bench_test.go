package topk

import (
	"testing"

	"topk/internal/wrand"
)

// BenchmarkTraceOverhead measures the observability tax on the query hot
// path. The "off" case is the guard: with no trace sink installed the
// span hooks must add zero allocations per query (each BeginSpan is one
// atomic load), so plain builds pay nothing for the instrumentation
// compiled into the reductions. Compare off vs on ns/op to see the cost
// of full tracing+metrics; `make bench` runs both.
func BenchmarkTraceOverhead(b *testing.B) {
	g := wrand.New(301)
	items := genIntervalItems(g, 2000)
	xs := make([]float64, 64)
	for i := range xs {
		xs[i] = g.Float64() * 120
	}

	run := func(b *testing.B, opts ...Option) {
		base := []Option{WithReduction(Expected), WithSeed(5)}
		ix, err := NewIntervalIndex(items, append(base, opts...)...)
		if err != nil {
			b.Fatal(err)
		}
		// Warm the shared cache so steady-state queries allocate only
		// what TopK itself allocates (result slices).
		for _, x := range xs {
			ix.TopK(x, 8)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ix.TopK(xs[i%len(xs)], 8)
		}
	}

	var off, on testing.BenchmarkResult
	b.Run("off", func(b *testing.B) {
		run(b)
		off = testing.BenchmarkResult{N: b.N}
	})
	b.Run("on", func(b *testing.B) {
		run(b, WithTracing(), WithMetrics())
		on = testing.BenchmarkResult{N: b.N}
	})
	_ = off
	_ = on
}

// TestTraceOffZeroAllocOverhead is the CI-enforceable form of the
// benchmark: a query on a plain build must allocate exactly as many
// objects as the same query on a fully instrumented build, i.e. the
// span hooks and metrics collector add zero allocations per query on
// the shared path (the off path's per-span cost — one atomic load — is
// pinned separately by internal/em's TestSpanOffPathZeroAlloc).
func TestTraceOffZeroAllocOverhead(t *testing.T) {
	g := wrand.New(302)
	items := genIntervalItems(g, 1000)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = g.Float64() * 120
	}
	measure := func(opts ...Option) float64 {
		base := []Option{WithReduction(Expected), WithSeed(5)}
		ix, err := NewIntervalIndex(items, append(base, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range xs { // warm shared cache
			ix.TopK(x, 8)
		}
		i := 0
		return testing.AllocsPerRun(200, func() {
			ix.TopK(xs[i%len(xs)], 8)
			i++
		})
	}
	plain := measure()
	traced := measure(WithTracing(), WithMetrics())
	if traced != plain {
		t.Fatalf("instrumented TopK allocates %v objects/op, plain %v; observability must add zero", traced, plain)
	}
}

// TestQueryCtxZeroAllocOverhead extends the zero-alloc gate to the
// request-lifecycle path: on an uninstrumented build, QueryBatchCtx with
// a zero QueryCtx must allocate exactly what QueryBatch does — the
// limit plumbing (one struct copy, a nil-deadline check per view) may
// not touch the heap. An armed-but-generous ctx is also pinned: arming
// the limits costs at most the deadline's time.Time bookkeeping, never
// per-query garbage proportional to the walk.
func TestQueryCtxZeroAllocOverhead(t *testing.T) {
	g := wrand.New(303)
	items := genIntervalItems(g, 1000)
	xs := make([]float64, 16)
	for i := range xs {
		xs[i] = g.Float64() * 120
	}
	ix, err := NewIntervalIndex(items, WithReduction(Expected), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range xs { // warm shared cache
		ix.TopK(x, 8)
	}
	measure := func(f func(i int)) float64 {
		i := 0
		return testing.AllocsPerRun(200, func() {
			f(i)
			i++
		})
	}
	// Throwaway first measurement: the very first AllocsPerRun pass runs
	// one object/op below steady state (lazy runtime warmup), which would
	// read as a spurious diff between the paths compared below.
	measure(func(i int) { ix.QueryBatch(xs[i%len(xs):i%len(xs)+1], 8, 1) })
	batch := measure(func(i int) {
		ix.QueryBatch(xs[i%len(xs):i%len(xs)+1], 8, 1)
	})
	zeroCtx := measure(func(i int) {
		ix.QueryBatchCtx(QueryCtx{}, xs[i%len(xs):i%len(xs)+1], 8, 1)
	})
	if zeroCtx != batch {
		t.Fatalf("zero-QueryCtx batch allocates %v objects/op, plain batch %v; the lifecycle plumbing must add zero", zeroCtx, batch)
	}
	armed := QueryCtx{IOBudget: 1 << 40}
	budgeted := measure(func(i int) {
		ix.QueryBatchCtx(armed, xs[i%len(xs):i%len(xs)+1], 8, 1)
	})
	if budgeted != batch {
		t.Fatalf("budget-armed batch allocates %v objects/op, plain batch %v; arming a budget must add zero", budgeted, batch)
	}
}
