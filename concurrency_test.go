package topk

import (
	"math"
	"sync"
	"testing"

	"topk/internal/wrand"
)

// The tests in this file exercise the concurrency contract: an index's
// structure is immutable after construction, so any number of read-only
// queries — direct TopK calls from raw goroutines, or QueryBatch workers —
// may run in parallel. They assert three properties across all five paper
// problems (plus 1D ranges):
//
//  1. correctness: parallel results match the FullScan oracle;
//  2. determinism: per-query Stats are identical at parallelism 1 and 8,
//     because every query runs against its own cold private cache;
//  3. conservation: the index-wide Stats() delta across a batch equals
//     the sum of the per-query deltas.

// weightsOf projects any result slice to its weight sequence.
func weightsOf[R any](items []R, weight func(R) float64) []float64 {
	out := make([]float64, len(items))
	for i, it := range items {
		out[i] = weight(it)
	}
	return out
}

func sameFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkBatchInvariants runs the determinism and conservation checks shared
// by every problem-specific stress test. run must execute the whole batch
// with the given parallelism and return one weight slice per query; stats
// must return the index-wide Stats.
func checkBatchInvariants[R any](
	t *testing.T,
	name string,
	stats func() Stats,
	run func(parallelism int) []BatchResult[R],
	weight func(R) float64,
	oracle [][]float64,
) {
	t.Helper()

	before := stats()
	serial := run(1)
	mid := stats()
	parallel := run(8)
	after := stats()

	if len(serial) != len(oracle) || len(parallel) != len(oracle) {
		t.Fatalf("%s: got %d/%d batch results, want %d", name, len(serial), len(parallel), len(oracle))
	}
	var serialSum, parallelSum int64
	for i := range oracle {
		sw := weightsOf(serial[i].Items, weight)
		pw := weightsOf(parallel[i].Items, weight)
		if !sameFloats(sw, oracle[i]) {
			t.Fatalf("%s query %d: serial weights %v, oracle %v", name, i, sw, oracle[i])
		}
		if !sameFloats(pw, oracle[i]) {
			t.Fatalf("%s query %d: parallel weights %v, oracle %v", name, i, pw, oracle[i])
		}
		if serial[i].Stats != parallel[i].Stats {
			t.Fatalf("%s query %d: stats differ across parallelism: serial %+v, parallel %+v",
				name, i, serial[i].Stats, parallel[i].Stats)
		}
		serialSum += serial[i].Stats.IOs()
		parallelSum += parallel[i].Stats.IOs()
	}
	if d := mid.IOs() - before.IOs(); d != serialSum {
		t.Fatalf("%s: serial batch moved index IOs by %d, per-query sum %d", name, d, serialSum)
	}
	if d := after.IOs() - mid.IOs(); d != parallelSum {
		t.Fatalf("%s: parallel batch moved index IOs by %d, per-query sum %d", name, d, parallelSum)
	}
}

// stressDirect hammers query, an arbitrary closure over direct TopK calls,
// from workers goroutines and checks every result against want.
func stressDirect(t *testing.T, name string, workers, iters int, nq int, query func(i int) []float64, want [][]float64) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for it := 0; it < iters; it++ {
				i := (w + it) % nq
				if got := query(i); !sameFloats(got, want[i]) {
					select {
					case errs <- name:
					default:
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	if n, ok := <-errs; ok {
		t.Fatalf("%s: concurrent direct queries diverged from serial results", n)
	}
}

func TestConcurrentIntervalQueries(t *testing.T) {
	g := wrand.New(101)
	items := genIntervalItems(g, 800)
	ix, err := NewIntervalIndex(items, WithReduction(Expected), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const nq, k = 40, 10
	xs := make([]float64, nq)
	oracle := make([][]float64, nq)
	for i := range xs {
		xs[i] = g.Float64() * 120
		oracle[i] = intervalOracle(items, xs[i], k)
		if oracle[i] == nil {
			oracle[i] = []float64{}
		}
	}
	checkBatchInvariants(t, "interval", ix.Stats,
		func(p int) []BatchResult[IntervalItem[int]] { return ix.QueryBatch(xs, k, p) },
		func(it IntervalItem[int]) float64 { return it.Weight },
		oracle)
	stressDirect(t, "interval", 8, 60, nq, func(i int) []float64 {
		return weightsOf(ix.TopK(xs[i], k), func(it IntervalItem[int]) float64 { return it.Weight })
	}, oracle)
}

func TestConcurrentRangeQueries(t *testing.T) {
	g := wrand.New(102)
	n := 700
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItem1[int], n)
	for i := range items {
		items[i] = PointItem1[int]{Pos: g.Float64() * 100, Weight: ws[i], Data: i}
	}
	ix, err := NewRangeIndex(items, WithReduction(WorstCase), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const nq, k = 40, 8
	spans := make([]Span, nq)
	oracle := make([][]float64, nq)
	for i := range spans {
		lo := g.Float64() * 100
		spans[i] = Span{Lo: lo, Hi: lo + g.Float64()*30}
		var in []float64
		for _, it := range items {
			if spans[i].Lo <= it.Pos && it.Pos <= spans[i].Hi {
				in = append(in, it.Weight)
			}
		}
		oracle[i] = topWeights(in, k)
	}
	checkBatchInvariants(t, "range", ix.Stats,
		func(p int) []BatchResult[PointItem1[int]] { return ix.QueryBatch(spans, k, p) },
		func(it PointItem1[int]) float64 { return it.Weight },
		oracle)
	stressDirect(t, "range", 8, 60, nq, func(i int) []float64 {
		return weightsOf(ix.TopK(spans[i].Lo, spans[i].Hi, k), func(it PointItem1[int]) float64 { return it.Weight })
	}, oracle)
}

func TestConcurrentDominanceQueries(t *testing.T) {
	g := wrand.New(103)
	items := genDomItems(g, 600)
	ix, err := NewDominanceIndex(items, WithReduction(Expected), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const nq, k = 30, 8
	qs := make([]CornerQuery, nq)
	oracle := make([][]float64, nq)
	for i := range qs {
		qs[i] = CornerQuery{X: g.Float64() * 110, Y: g.Float64() * 110, Z: g.Float64() * 110}
		var in []float64
		for _, it := range items {
			if it.X <= qs[i].X && it.Y <= qs[i].Y && it.Z <= qs[i].Z {
				in = append(in, it.Weight)
			}
		}
		oracle[i] = topWeights(in, k)
	}
	checkBatchInvariants(t, "dominance", ix.Stats,
		func(p int) []BatchResult[DominanceItem[string]] { return ix.QueryBatch(qs, k, p) },
		func(it DominanceItem[string]) float64 { return it.Weight },
		oracle)
	stressDirect(t, "dominance", 8, 40, nq, func(i int) []float64 {
		return weightsOf(ix.TopK(qs[i].X, qs[i].Y, qs[i].Z, k), func(it DominanceItem[string]) float64 { return it.Weight })
	}, oracle)
}

func TestConcurrentEnclosureQueries(t *testing.T) {
	g := wrand.New(104)
	n := 500
	ws := g.UniqueFloats(n, 1e6)
	items := make([]RectItem[int], n)
	for i := range items {
		x1, y1 := g.Float64()*100, g.Float64()*100
		items[i] = RectItem[int]{
			X1: x1, X2: x1 + g.ExpFloat64()*12,
			Y1: y1, Y2: y1 + g.ExpFloat64()*12,
			Weight: ws[i], Data: i,
		}
	}
	ix, err := NewEnclosureIndex(items, WithReduction(WorstCase), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const nq, k = 30, 6
	qs := make([]PointQuery, nq)
	oracle := make([][]float64, nq)
	for i := range qs {
		qs[i] = PointQuery{X: g.Float64() * 120, Y: g.Float64() * 120}
		var in []float64
		for _, it := range items {
			if it.X1 <= qs[i].X && qs[i].X <= it.X2 && it.Y1 <= qs[i].Y && qs[i].Y <= it.Y2 {
				in = append(in, it.Weight)
			}
		}
		oracle[i] = topWeights(in, k)
	}
	checkBatchInvariants(t, "enclosure", ix.Stats,
		func(p int) []BatchResult[RectItem[int]] { return ix.QueryBatch(qs, k, p) },
		func(it RectItem[int]) float64 { return it.Weight },
		oracle)
	stressDirect(t, "enclosure", 8, 40, nq, func(i int) []float64 {
		return weightsOf(ix.TopK(qs[i].X, qs[i].Y, k), func(it RectItem[int]) float64 { return it.Weight })
	}, oracle)
}

func TestConcurrentHalfplaneQueries(t *testing.T) {
	g := wrand.New(105)
	n := 500
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItem2[int], n)
	for i := range items {
		items[i] = PointItem2[int]{X: g.NormFloat64() * 10, Y: g.NormFloat64() * 10, Weight: ws[i], Data: i}
	}
	ix, err := NewHalfplaneIndex(items, WithReduction(Expected), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const nq, k = 30, 6
	qs := make([]HalfplaneQuery, nq)
	oracle := make([][]float64, nq)
	for i := range qs {
		theta := g.Float64() * 2 * math.Pi
		qs[i] = HalfplaneQuery{A: math.Cos(theta), B: math.Sin(theta), C: g.NormFloat64() * 8}
		var in []float64
		for _, it := range items {
			if qs[i].A*it.X+qs[i].B*it.Y >= qs[i].C {
				in = append(in, it.Weight)
			}
		}
		oracle[i] = topWeights(in, k)
	}
	checkBatchInvariants(t, "halfplane", ix.Stats,
		func(p int) []BatchResult[PointItem2[int]] { return ix.QueryBatch(qs, k, p) },
		func(it PointItem2[int]) float64 { return it.Weight },
		oracle)
	stressDirect(t, "halfplane", 8, 40, nq, func(i int) []float64 {
		return weightsOf(ix.TopK(qs[i].A, qs[i].B, qs[i].C, k), func(it PointItem2[int]) float64 { return it.Weight })
	}, oracle)
}

func TestConcurrentCircularQueries(t *testing.T) {
	g := wrand.New(106)
	const n, d = 400, 2
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{
			Coords: []float64{g.NormFloat64() * 10, g.NormFloat64() * 10},
			Weight: ws[i], Data: i,
		}
	}
	ix, err := NewCircularIndex(items, d, WithReduction(WorstCase), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const nq, k = 25, 6
	qs := make([]BallQuery, nq)
	oracle := make([][]float64, nq)
	for i := range qs {
		qs[i] = BallQuery{
			Center: []float64{g.NormFloat64() * 10, g.NormFloat64() * 10},
			Radius: 3 + g.Float64()*12,
		}
		var in []float64
		for _, it := range items {
			dx, dy := it.Coords[0]-qs[i].Center[0], it.Coords[1]-qs[i].Center[1]
			if dx*dx+dy*dy <= qs[i].Radius*qs[i].Radius {
				in = append(in, it.Weight)
			}
		}
		oracle[i] = topWeights(in, k)
	}
	checkBatchInvariants(t, "circular", ix.Stats,
		func(p int) []BatchResult[PointItemN[int]] { return ix.QueryBatch(qs, k, p) },
		func(it PointItemN[int]) float64 { return it.Weight },
		oracle)
	stressDirect(t, "circular", 8, 40, nq, func(i int) []float64 {
		return weightsOf(ix.TopK(qs[i].Center, qs[i].Radius, k), func(it PointItemN[int]) float64 { return it.Weight })
	}, oracle)
}

func TestConcurrentOrthoQueries(t *testing.T) {
	g := wrand.New(107)
	const n, d = 400, 3
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = g.Float64() * 100
		}
		items[i] = PointItemN[int]{Coords: c, Weight: ws[i], Data: i}
	}
	ix, err := NewOrthoIndex(items, d, WithReduction(Expected), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const nq, k = 25, 6
	qs := make([]BoxQuery, nq)
	oracle := make([][]float64, nq)
	for i := range qs {
		lo, hi := make([]float64, d), make([]float64, d)
		for j := 0; j < d; j++ {
			lo[j] = g.Float64() * 70
			hi[j] = lo[j] + 10 + g.Float64()*30
		}
		qs[i] = BoxQuery{Lo: lo, Hi: hi}
		var in []float64
		for _, it := range items {
			inside := true
			for j := 0; j < d; j++ {
				if it.Coords[j] < lo[j] || it.Coords[j] > hi[j] {
					inside = false
					break
				}
			}
			if inside {
				in = append(in, it.Weight)
			}
		}
		oracle[i] = topWeights(in, k)
	}
	checkBatchInvariants(t, "ortho", ix.Stats,
		func(p int) []BatchResult[PointItemN[int]] {
			res, err := ix.QueryBatch(qs, k, p)
			if err != nil {
				t.Fatal(err)
			}
			return res
		},
		func(it PointItemN[int]) float64 { return it.Weight },
		oracle)
}

func TestOrthoQueryBatchRejectsBadBox(t *testing.T) {
	g := wrand.New(108)
	ws := g.UniqueFloats(10, 1e6)
	items := make([]PointItemN[int], 10)
	for i := range items {
		items[i] = PointItemN[int]{Coords: []float64{g.Float64(), g.Float64()}, Weight: ws[i], Data: i}
	}
	ix, err := NewOrthoIndex(items, 2, WithReduction(FullScan))
	if err != nil {
		t.Fatal(err)
	}
	qs := []BoxQuery{
		{Lo: []float64{0, 0}, Hi: []float64{1, 1}},
		{Lo: []float64{1, 1}, Hi: []float64{0, 0}}, // inverted
	}
	if _, err := ix.QueryBatch(qs, 3, 2); err == nil {
		t.Fatal("inverted box accepted")
	}
	qs[1] = BoxQuery{Lo: []float64{0}, Hi: []float64{1}} // wrong dimension
	if _, err := ix.QueryBatch(qs, 3, 2); err == nil {
		t.Fatal("wrong-dimension box accepted")
	}
}

// topWeights sorts weights descending and truncates to k, normalizing nil
// to an empty slice so oracle comparisons are shape-stable.
func topWeights(ws []float64, k int) []float64 {
	out := append([]float64{}, ws...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] > out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	if k < len(out) {
		out = out[:k]
	}
	return out
}
