package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/interval"
)

// IntervalItem is one weighted interval with an arbitrary payload.
type IntervalItem[T any] struct {
	Lo, Hi float64 // the closed interval [Lo, Hi]
	Weight float64 // distinct across the index
	Data   T
}

// IntervalIndex answers top-k interval-stabbing queries (the paper's
// Theorem 4): given a point x and an integer k, return the k heaviest
// intervals containing x. With the Expected reduction the index is
// dynamic: Insert and Delete are supported at O(log_B n) amortized
// expected I/Os.
type IntervalIndex[T any] struct {
	opts    Options
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[float64, interval.Interval]
	dyn     updatableTopK[float64, interval.Interval] // non-nil when updatable
	pri     core.Prioritized[float64, interval.Interval]
	src     []IntervalItem[T] // retained for Items() on static reductions
	data    map[float64]T
	n       int
}

// NewIntervalIndex builds an index over items. Weights must be distinct
// and intervals well-formed (Lo ≤ Hi).
func NewIntervalIndex[T any](items []IntervalItem[T], opts ...Option) (*IntervalIndex[T], error) {
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[interval.Interval], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		cores[i] = core.Item[interval.Interval]{
			Value:  interval.Interval{Lo: it.Lo, Hi: it.Hi},
			Weight: it.Weight,
		}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	ix := &IntervalIndex[T]{opts: o, tracker: tracker, data: data, n: len(items)}

	pf := interval.NewPrioritizedFactory[interval.Interval](tracker)
	mf := interval.NewMaxFactory[interval.Interval](tracker)
	match := interval.Match[interval.Interval]

	// The Expected reduction is built in its dynamic form so the index is
	// updatable (Theorem 2's native update path); any other reduction
	// becomes updatable through the logarithmic-method overlay when
	// WithUpdates is set, and is static otherwise.
	switch {
	case o.reduction == Expected:
		dyn, err := core.NewDynamicExpected(cores, match,
			interval.NewDynamicPrioritizedFactory[interval.Interval](tracker),
			interval.NewDynamicMaxFactory[interval.Interval](tracker),
			core.ExpectedOptions{B: o.blockSize, Seed: o.seed, Tracker: tracker})
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	case o.updates:
		dyn, err := newOverlay(cores, match, pf, mf, interval.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	default:
		t, err := buildTopK(cores, match, pf, mf, interval.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk = t
		ix.src = append([]IntervalItem[T](nil), items...)
	}

	// Direct prioritized access shares the reduction's own black box on D
	// rather than building a duplicate.
	ix.pri = prioritizedOf(ix.topk)

	// Observability hooks attach after construction so build-time I/Os
	// don't pollute query metrics.
	ix.ob = newIndexObs("interval", o, tracker)
	ix.ob.observeShape(ix.n, ix.dyn)
	return ix, nil
}

// Len returns the number of live intervals.
func (ix *IntervalIndex[T]) Len() int { return ix.n }

// TopK returns the k heaviest intervals containing x, heaviest first.
func (ix *IntervalIndex[T]) TopK(x float64, k int) []IntervalItem[T] {
	t0, before := ix.ob.start()
	res := ix.topk.TopK(x, k)
	ix.ob.done(t0, before, func() string { return fmt.Sprintf("stab x=%v k=%d", x, k) })
	out := make([]IntervalItem[T], len(res))
	for i, it := range res {
		out[i] = IntervalItem[T]{Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight, Data: ix.data[it.Weight]}
	}
	return out
}

// ReportAbove streams every interval containing x with weight ≥ tau (in
// unspecified order); return false from visit to stop early. This is the
// underlying prioritized query.
func (ix *IntervalIndex[T]) ReportAbove(x, tau float64, visit func(IntervalItem[T]) bool) {
	ix.pri.ReportAbove(x, tau, func(it core.Item[interval.Interval]) bool {
		return visit(IntervalItem[T]{Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight, Data: ix.data[it.Weight]})
	})
}

// Max returns the heaviest interval containing x (a top-1 query).
func (ix *IntervalIndex[T]) Max(x float64) (IntervalItem[T], bool) {
	it, ok := maxOfTopK(ix.topk, x)
	if !ok {
		return IntervalItem[T]{}, false
	}
	return IntervalItem[T]{Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight, Data: ix.data[it.Weight]}, true
}

// Insert adds an interval. Indexes built with the Expected reduction
// update through Theorem 2's dynamic path; any other reduction updates
// through the logarithmic overlay when built with WithUpdates, and returns
// an error otherwise.
func (ix *IntervalIndex[T]) Insert(item IntervalItem[T]) error {
	if ix.dyn == nil {
		return errStatic(ix.opts.reduction)
	}
	if item.Lo > item.Hi || math.IsNaN(item.Lo) || math.IsNaN(item.Hi) {
		return fmt.Errorf("topk: malformed interval [%v, %v]", item.Lo, item.Hi)
	}
	if math.IsNaN(item.Weight) || math.IsInf(item.Weight, 0) {
		return fmt.Errorf("topk: non-finite weight %v", item.Weight)
	}
	if _, dup := ix.data[item.Weight]; dup {
		return fmt.Errorf("topk: duplicate weight %v", item.Weight)
	}
	ci := core.Item[interval.Interval]{Value: interval.Interval{Lo: item.Lo, Hi: item.Hi}, Weight: item.Weight}
	if err := ix.dyn.Insert(ci); err != nil {
		return err
	}
	ix.data[item.Weight] = item.Data
	ix.n++
	ix.ob.observeShape(ix.n, ix.dyn)
	return nil
}

// Delete removes the interval with the given weight, reporting whether it
// was present. See Insert for which builds are updatable.
func (ix *IntervalIndex[T]) Delete(weight float64) (bool, error) {
	if ix.dyn == nil {
		return false, errStatic(ix.opts.reduction)
	}
	if !ix.dyn.DeleteWeight(weight) {
		return false, nil
	}
	delete(ix.data, weight)
	ix.n--
	ix.ob.observeShape(ix.n, ix.dyn)
	return true, nil
}

// Items returns a snapshot of the live intervals in unspecified order —
// the full state needed to persist and rebuild the index (construction is
// deterministic given the same items, options, and seed).
func (ix *IntervalIndex[T]) Items() []IntervalItem[T] {
	if ix.dyn == nil {
		return append([]IntervalItem[T](nil), ix.src...)
	}
	live := ix.dyn.Items()
	out := make([]IntervalItem[T], 0, len(live))
	for _, it := range live {
		out = append(out, IntervalItem[T]{
			Lo: it.Value.Lo, Hi: it.Value.Hi, Weight: it.Weight, Data: ix.data[it.Weight],
		})
	}
	return out
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *IntervalIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters (space is preserved).
func (ix *IntervalIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// QueryBatch answers one top-k stabbing query per element of xs on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0),
// returning results positionally aligned with xs. Each query runs in its
// own tracker view — a private cold cache and counters — so its Stats are
// the same as a serial cold-cache run regardless of parallelism; the
// merged totals appear in Stats() once the batch returns. Batches may run
// concurrently with each other and with single queries, but not with
// Insert or Delete.
func (ix *IntervalIndex[T]) QueryBatch(xs []float64, k int, parallelism int) []BatchResult[IntervalItem[T]] {
	return runBatch(ix.tracker, ix.ob, xs, parallelism, func(x float64) []IntervalItem[T] {
		return ix.TopK(x, k)
	})
}

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (ix *IntervalIndex[T]) WriteMetrics(w io.Writer) error { return ix.ob.writeMetrics(w) }
