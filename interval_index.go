package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/interval"
	"topk/internal/snap"
)

// IntervalItem is one weighted interval with an arbitrary payload.
type IntervalItem[T any] struct {
	Lo, Hi float64 // the closed interval [Lo, Hi]
	Weight float64 // distinct across the index
	Data   T
}

// intervalProblem is the engine descriptor for top-k interval stabbing.
func intervalProblem[T any]() problem[float64, interval.Interval, IntervalItem[T]] {
	return problem[float64, interval.Interval, IntervalItem[T]]{
		name:   "interval",
		match:  interval.Match[interval.Interval],
		lambda: interval.Lambda,
		pri: func(tr *em.Tracker) core.PrioritizedFactory[float64, interval.Interval] {
			return interval.NewPrioritizedFactory[interval.Interval](tr)
		},
		max: func(tr *em.Tracker) core.MaxFactory[float64, interval.Interval] {
			return interval.NewMaxFactory[interval.Interval](tr)
		},
		dynPri: func(tr *em.Tracker) core.DynamicPrioritizedFactory[float64, interval.Interval] {
			return interval.NewDynamicPrioritizedFactory[interval.Interval](tr)
		},
		dynMax: func(tr *em.Tracker) core.DynamicMaxFactory[float64, interval.Interval] {
			return interval.NewDynamicMaxFactory[interval.Interval](tr)
		},
		validate: func(it IntervalItem[T]) error {
			if it.Lo > it.Hi || math.IsNaN(it.Lo) || math.IsNaN(it.Hi) {
				return fmt.Errorf("topk: malformed interval [%v, %v]", it.Lo, it.Hi)
			}
			return nil
		},
		weight: func(it IntervalItem[T]) float64 { return it.Weight },
		toCore: func(it IntervalItem[T]) core.Item[interval.Interval] {
			return core.Item[interval.Interval]{Value: interval.Interval{Lo: it.Lo, Hi: it.Hi}, Weight: it.Weight}
		},
		fromCore: func(ci core.Item[interval.Interval], st IntervalItem[T]) IntervalItem[T] {
			st.Lo, st.Hi, st.Weight = ci.Value.Lo, ci.Value.Hi, ci.Weight
			return st
		},
		describe: func(q float64, k int) string { return fmt.Sprintf("stab x=%v k=%d", q, k) },
	}
}

// IntervalIndex answers top-k interval-stabbing queries (the paper's
// Theorem 4): given a point x and an integer k, return the k heaviest
// intervals containing x. With the Expected reduction the index is
// dynamic: Insert and Delete are supported at O(log_B n) amortized
// expected I/Os.
type IntervalIndex[T any] struct {
	facade[float64, interval.Interval, IntervalItem[T]]
}

// NewIntervalIndex builds an index over items. Weights must be distinct
// and intervals well-formed (Lo ≤ Hi).
func NewIntervalIndex[T any](items []IntervalItem[T], opts ...Option) (*IntervalIndex[T], error) {
	eng, err := newEngine(intervalProblem[T](), items, opts)
	if err != nil {
		return nil, err
	}
	return &IntervalIndex[T]{newFacade(eng)}, nil
}

// TopK returns the k heaviest intervals containing x, heaviest first.
func (ix *IntervalIndex[T]) TopK(x float64, k int) []IntervalItem[T] { return ix.eng.TopK(x, k) }

// ReportAbove streams every interval containing x with weight ≥ tau (in
// unspecified order); return false from visit to stop early. This is the
// underlying prioritized query.
func (ix *IntervalIndex[T]) ReportAbove(x, tau float64, visit func(IntervalItem[T]) bool) {
	ix.eng.ReportAbove(x, tau, visit)
}

// Max returns the heaviest interval containing x (a top-1 query).
func (ix *IntervalIndex[T]) Max(x float64) (IntervalItem[T], bool) { return ix.eng.Max(x) }

// Items returns a snapshot of the live intervals in unspecified order —
// the full state needed to persist and rebuild the index (construction is
// deterministic given the same items, options, and seed).
func (ix *IntervalIndex[T]) Items() []IntervalItem[T] { return ix.eng.Items() }

// QueryBatch answers one top-k stabbing query per element of xs on a
// bounded pool of `parallelism` worker goroutines (GOMAXPROCS when <= 0),
// returning results positionally aligned with xs. Each query runs in its
// own tracker view — a private cold cache and counters — so its Stats are
// the same as a serial cold-cache run regardless of parallelism; the
// merged totals appear in Stats() once the batch returns. Batches may run
// concurrently with each other and with single queries, but not with
// Insert or Delete.
func (ix *IntervalIndex[T]) QueryBatch(xs []float64, k int, parallelism int) []BatchResult[IntervalItem[T]] {
	return ix.eng.QueryBatch(xs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract: each
// query runs with ctx's I/O budget and deadline armed, and one that
// exceeds either returns a typed Outcome/Err — or the documented top-1
// fallback with ctx.DegradeToMax — instead of over-serving. A zero ctx
// is exactly QueryBatch.
func (ix *IntervalIndex[T]) QueryBatchCtx(ctx QueryCtx, xs []float64, k int, parallelism int) []BatchResult[IntervalItem[T]] {
	return ix.eng.QueryBatchCtx(ctx, xs, k, parallelism)
}

// RestoreIntervalIndex reconstructs an interval index from a snapshot
// stream written by Snapshot. The restored index answers every query
// byte-identically to the snapshotted one, and its EM tracker is charged
// one sequential read pass over the snapshot bytes instead of a full
// rebuild (the zero-rebuild warm start of DESIGN.md §12). The payload
// type T must match the type the snapshot was written with — payloads
// are gob-encoded, so a mismatch surfaces as a decode error.
func RestoreIntervalIndex[T any](r io.Reader, opts ...Option) (*IntervalIndex[T], error) {
	eng, err := restoreEngine(func(snap.Header) (problem[float64, interval.Interval, IntervalItem[T]], error) {
		return intervalProblem[T](), nil
	}, r, opts)
	if err != nil {
		return nil, err
	}
	return &IntervalIndex[T]{newFacade(eng)}, nil
}
