package topk

import (
	"strings"
	"testing"

	"topk/internal/em"
	"topk/internal/wrand"
)

// Edge-case tests for the QueryBatch worker pool: degenerate inputs
// (empty batch, k=0, k>n, parallelism exceeding the batch) and the
// panic contract — a panicking query must not wedge the pool or leak its
// tracker view, and the first panic must surface on the caller.

func edgeIndex(t *testing.T) (*IntervalIndex[int], []IntervalItem[int]) {
	t.Helper()
	g := wrand.New(401)
	items := genIntervalItems(g, 50)
	ix, err := NewIntervalIndex(items, WithReduction(Expected), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	return ix, items
}

func TestQueryBatchEmpty(t *testing.T) {
	ix, _ := edgeIndex(t)
	before := ix.Stats()
	if res := ix.QueryBatch(nil, 5, 4); res != nil {
		t.Fatalf("empty batch returned %v", res)
	}
	if res := ix.QueryBatch([]float64{}, 5, 4); res != nil {
		t.Fatalf("zero-length batch returned %v", res)
	}
	if after := ix.Stats(); after.IOs() != before.IOs() {
		t.Fatal("empty batch moved the I/O counters")
	}
}

func TestQueryBatchKZero(t *testing.T) {
	ix, _ := edgeIndex(t)
	res := ix.QueryBatch([]float64{10, 50, 90}, 0, 2)
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
	for i, r := range res {
		if len(r.Items) != 0 {
			t.Fatalf("query %d: k=0 returned %d items", i, len(r.Items))
		}
	}
}

func TestQueryBatchKExceedsN(t *testing.T) {
	ix, items := edgeIndex(t)
	res := ix.QueryBatch([]float64{50}, len(items)*10, 2)
	if len(res) != 1 {
		t.Fatalf("got %d results, want 1", len(res))
	}
	// Everything stabbing 50, ranked; never more than n items.
	var want []float64
	for _, it := range items {
		if it.Lo <= 50 && 50 <= it.Hi {
			want = append(want, it.Weight)
		}
	}
	got := intervalWeights(res[0].Items)
	if !sameFloats(got, topWeights(want, len(items)*10)) {
		t.Fatalf("k>n answer %v, want %v", got, want)
	}
}

func TestQueryBatchParallelismExceedsQueries(t *testing.T) {
	ix, _ := edgeIndex(t)
	xs := []float64{10, 90}
	wide := ix.QueryBatch(xs, 5, 64)
	narrow := ix.QueryBatch(xs, 5, 1)
	if len(wide) != len(narrow) {
		t.Fatalf("result counts differ: %d vs %d", len(wide), len(narrow))
	}
	for i := range xs {
		if !sameFloats(intervalWeights(wide[i].Items), intervalWeights(narrow[i].Items)) {
			t.Fatalf("query %d: answers differ across parallelism", i)
		}
		if wide[i].Stats != narrow[i].Stats {
			t.Fatalf("query %d: stats differ: %+v vs %+v", i, wide[i].Stats, narrow[i].Stats)
		}
	}
}

func TestQueryBatchNegativeParallelism(t *testing.T) {
	ix, _ := edgeIndex(t)
	res := ix.QueryBatch([]float64{10, 50, 90}, 3, -7) // <= 0 means GOMAXPROCS
	if len(res) != 3 {
		t.Fatalf("got %d results, want 3", len(res))
	}
}

// TestRunBatchPanicPropagates drives runBatch directly: one query panics,
// the rest of the pool drains, the panic value reaches the caller, and
// the tracker is left clean enough that a follow-up batch succeeds with
// correct per-query accounting.
func TestRunBatchPanicPropagates(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 8})
	qs := make([]int, 40)
	for i := range qs {
		qs[i] = i
	}

	run := func() (recovered any) {
		defer func() { recovered = recover() }()
		runBatch(tr, nil, qs, 4, batchSpec[int, int]{one: func(q int) []int {
			if q == 7 {
				panic("query 7 exploded")
			}
			return []int{q}
		}})
		return nil
	}
	rec := run()
	if rec == nil {
		t.Fatal("panic did not propagate to the caller")
	}
	if s, ok := rec.(string); !ok || !strings.Contains(s, "query 7 exploded") {
		t.Fatalf("unexpected panic value %v", rec)
	}

	// The pool must be reusable: all views ended, no goroutine routing
	// left behind, per-result positions intact.
	res := runBatch(tr, nil, qs, 4, batchSpec[int, int]{one: func(q int) []int { return []int{q * 2} }})
	if len(res) != len(qs) {
		t.Fatalf("follow-up batch returned %d results, want %d", len(res), len(qs))
	}
	for i, r := range res {
		if len(r.Items) != 1 || r.Items[0] != i*2 {
			t.Fatalf("follow-up result %d: %v", i, r.Items)
		}
	}
}

// TestRunBatchPanicConcurrentSafety re-runs the panic path under load so
// the race detector can see the abort/recover handshake.
func TestRunBatchPanicConcurrentSafety(t *testing.T) {
	tr := em.NewTracker(em.Config{B: 64, MemBlocks: 8})
	qs := make([]int, 200)
	for i := range qs {
		qs[i] = i
	}
	for trial := 0; trial < 10; trial++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("panic did not propagate")
				}
			}()
			runBatch(tr, nil, qs, 8, batchSpec[int, int]{one: func(q int) []int {
				if q%37 == 3 {
					panic(q)
				}
				return nil
			}})
		}()
	}
}
