package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/rangerep"
)

// PointItem1 is one weighted point on the real line with a payload.
type PointItem1[T any] struct {
	Pos    float64
	Weight float64
	Data   T
}

// RangeIndex answers top-k 1D range-reporting queries — the most-studied
// problem of the paper's framework (its Section 2 survey): given a range
// [lo, hi] and k, return the k heaviest points inside. With the Expected
// reduction (the default) the index is dynamic.
type RangeIndex[T any] struct {
	opts    Options
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[rangerep.Span, float64]
	dyn     updatableTopK[rangerep.Span, float64]
	pri     core.Prioritized[rangerep.Span, float64]
	src     []PointItem1[T] // retained for Items() on static reductions
	data    map[float64]T
	n       int
}

// NewRangeIndex builds an index over items (weights distinct).
func NewRangeIndex[T any](items []PointItem1[T], opts ...Option) (*RangeIndex[T], error) {
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[float64], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		cores[i] = core.Item[float64]{Value: it.Pos, Weight: it.Weight}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	ix := &RangeIndex[T]{opts: o, tracker: tracker, data: data, n: len(items)}
	switch {
	case o.reduction == Expected:
		dyn, err := core.NewDynamicExpected(cores, rangerep.Match,
			rangerep.NewDynamicPrioritizedFactory(tracker),
			rangerep.NewDynamicMaxFactory(tracker),
			core.ExpectedOptions{B: o.blockSize, Seed: o.seed, Tracker: tracker})
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	case o.updates:
		dyn, err := newOverlay(cores, rangerep.Match,
			rangerep.NewPrioritizedFactory(tracker),
			rangerep.NewMaxFactory(tracker),
			rangerep.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	default:
		t, err := buildTopK(cores, rangerep.Match,
			rangerep.NewPrioritizedFactory(tracker),
			rangerep.NewMaxFactory(tracker),
			rangerep.Lambda, o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk = t
		ix.src = append([]PointItem1[T](nil), items...)
	}
	ix.pri = prioritizedOf(ix.topk)
	ix.ob = newIndexObs("range", o, tracker)
	ix.ob.observeShape(ix.n, ix.dyn)
	return ix, nil
}

// Len returns the number of live points.
func (ix *RangeIndex[T]) Len() int { return ix.n }

func (ix *RangeIndex[T]) wrap(it core.Item[float64]) PointItem1[T] {
	return PointItem1[T]{Pos: it.Value, Weight: it.Weight, Data: ix.data[it.Weight]}
}

// TopK returns the k heaviest points in [lo, hi], heaviest first.
func (ix *RangeIndex[T]) TopK(lo, hi float64, k int) []PointItem1[T] {
	t0, before := ix.ob.start()
	res := ix.topk.TopK(rangerep.Span{Lo: lo, Hi: hi}, k)
	ix.ob.done(t0, before, func() string { return fmt.Sprintf("range [%v,%v] k=%d", lo, hi, k) })
	out := make([]PointItem1[T], len(res))
	for i, it := range res {
		out[i] = ix.wrap(it)
	}
	return out
}

// ReportAbove streams every point in [lo, hi] with weight ≥ tau.
func (ix *RangeIndex[T]) ReportAbove(lo, hi, tau float64, visit func(PointItem1[T]) bool) {
	ix.pri.ReportAbove(rangerep.Span{Lo: lo, Hi: hi}, tau, func(it core.Item[float64]) bool {
		return visit(ix.wrap(it))
	})
}

// Max returns the heaviest point in [lo, hi] (a top-1 query).
func (ix *RangeIndex[T]) Max(lo, hi float64) (PointItem1[T], bool) {
	it, ok := maxOfTopK(ix.topk, rangerep.Span{Lo: lo, Hi: hi})
	if !ok {
		return PointItem1[T]{}, false
	}
	return ix.wrap(it), true
}

// Count returns the number of points in [lo, hi]: O(log_B n) I/Os when the
// reduction's black box supports counting (all but FullScan), otherwise by
// enumeration.
func (ix *RangeIndex[T]) Count(lo, hi float64) int {
	q := rangerep.Span{Lo: lo, Hi: hi}
	if p, ok := ix.pri.(*rangerep.Points); ok {
		return p.Count(q)
	}
	n := 0
	ix.pri.ReportAbove(q, math.Inf(-1), func(core.Item[float64]) bool {
		n++
		return true
	})
	return n
}

// Insert adds a point (Expected reduction, or any reduction built with
// WithUpdates).
func (ix *RangeIndex[T]) Insert(item PointItem1[T]) error {
	if ix.dyn == nil {
		return errStatic(ix.opts.reduction)
	}
	if math.IsNaN(item.Pos) {
		return fmt.Errorf("topk: NaN position")
	}
	if math.IsNaN(item.Weight) || math.IsInf(item.Weight, 0) {
		return fmt.Errorf("topk: non-finite weight %v", item.Weight)
	}
	if _, dup := ix.data[item.Weight]; dup {
		return fmt.Errorf("topk: duplicate weight %v", item.Weight)
	}
	ci := core.Item[float64]{Value: item.Pos, Weight: item.Weight}
	if err := ix.dyn.Insert(ci); err != nil {
		return err
	}
	ix.data[item.Weight] = item.Data
	ix.n++
	ix.ob.observeShape(ix.n, ix.dyn)
	return nil
}

// Delete removes the point with the given weight, reporting whether it
// was present. See Insert for which builds are updatable.
func (ix *RangeIndex[T]) Delete(weight float64) (bool, error) {
	if ix.dyn == nil {
		return false, errStatic(ix.opts.reduction)
	}
	if !ix.dyn.DeleteWeight(weight) {
		return false, nil
	}
	delete(ix.data, weight)
	ix.n--
	ix.ob.observeShape(ix.n, ix.dyn)
	return true, nil
}

// Items returns a snapshot of the live points in unspecified order — the
// full state needed to persist and rebuild the index (construction is
// deterministic given the same items, options, and seed).
func (ix *RangeIndex[T]) Items() []PointItem1[T] {
	if ix.dyn == nil {
		return append([]PointItem1[T](nil), ix.src...)
	}
	live := ix.dyn.Items()
	out := make([]PointItem1[T], 0, len(live))
	for _, it := range live {
		out = append(out, PointItem1[T]{Pos: it.Value, Weight: it.Weight, Data: ix.data[it.Weight]})
	}
	return out
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *RangeIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters.
func (ix *RangeIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// QueryBatch answers one top-k range query per Span on a bounded pool of
// `parallelism` worker goroutines (GOMAXPROCS when <= 0). Each query runs
// in its own cold tracker view, so per-query Stats are independent of
// parallelism; see IntervalIndex.QueryBatch for the full contract. Must
// not run concurrently with Insert or Delete.
func (ix *RangeIndex[T]) QueryBatch(spans []Span, k int, parallelism int) []BatchResult[PointItem1[T]] {
	return runBatch(ix.tracker, ix.ob, spans, parallelism, func(s Span) []PointItem1[T] {
		return ix.TopK(s.Lo, s.Hi, k)
	})
}

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (ix *RangeIndex[T]) WriteMetrics(w io.Writer) error { return ix.ob.writeMetrics(w) }
