package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/rangerep"
	"topk/internal/snap"
)

// PointItem1 is one weighted point on the real line with a payload.
type PointItem1[T any] struct {
	Pos    float64
	Weight float64
	Data   T
}

// rangeProblem is the engine descriptor for top-k 1D range reporting.
func rangeProblem[T any]() problem[rangerep.Span, float64, PointItem1[T]] {
	return problem[rangerep.Span, float64, PointItem1[T]]{
		name:   "range",
		match:  rangerep.Match,
		lambda: rangerep.Lambda,
		pri: func(tr *em.Tracker) core.PrioritizedFactory[rangerep.Span, float64] {
			return rangerep.NewPrioritizedFactory(tr)
		},
		max: func(tr *em.Tracker) core.MaxFactory[rangerep.Span, float64] {
			return rangerep.NewMaxFactory(tr)
		},
		dynPri: func(tr *em.Tracker) core.DynamicPrioritizedFactory[rangerep.Span, float64] {
			return rangerep.NewDynamicPrioritizedFactory(tr)
		},
		dynMax: func(tr *em.Tracker) core.DynamicMaxFactory[rangerep.Span, float64] {
			return rangerep.NewDynamicMaxFactory(tr)
		},
		validate: func(it PointItem1[T]) error {
			if math.IsNaN(it.Pos) {
				return fmt.Errorf("topk: NaN position")
			}
			return nil
		},
		weight: func(it PointItem1[T]) float64 { return it.Weight },
		toCore: func(it PointItem1[T]) core.Item[float64] {
			return core.Item[float64]{Value: it.Pos, Weight: it.Weight}
		},
		fromCore: func(ci core.Item[float64], st PointItem1[T]) PointItem1[T] {
			st.Pos, st.Weight = ci.Value, ci.Weight
			return st
		},
		describe: func(q rangerep.Span, k int) string {
			return fmt.Sprintf("range [%v,%v] k=%d", q.Lo, q.Hi, k)
		},
	}
}

// RangeIndex answers top-k 1D range-reporting queries — the most-studied
// problem of the paper's framework (its Section 2 survey): given a range
// [lo, hi] and k, return the k heaviest points inside. With the Expected
// reduction (the default) the index is dynamic.
type RangeIndex[T any] struct {
	facade[rangerep.Span, float64, PointItem1[T]]
}

// NewRangeIndex builds an index over items (weights distinct).
func NewRangeIndex[T any](items []PointItem1[T], opts ...Option) (*RangeIndex[T], error) {
	eng, err := newEngine(rangeProblem[T](), items, opts)
	if err != nil {
		return nil, err
	}
	return &RangeIndex[T]{newFacade(eng)}, nil
}

// TopK returns the k heaviest points in [lo, hi], heaviest first.
func (ix *RangeIndex[T]) TopK(lo, hi float64, k int) []PointItem1[T] {
	return ix.eng.TopK(rangerep.Span{Lo: lo, Hi: hi}, k)
}

// ReportAbove streams every point in [lo, hi] with weight ≥ tau.
func (ix *RangeIndex[T]) ReportAbove(lo, hi, tau float64, visit func(PointItem1[T]) bool) {
	ix.eng.ReportAbove(rangerep.Span{Lo: lo, Hi: hi}, tau, visit)
}

// Max returns the heaviest point in [lo, hi] (a top-1 query).
func (ix *RangeIndex[T]) Max(lo, hi float64) (PointItem1[T], bool) {
	return ix.eng.Max(rangerep.Span{Lo: lo, Hi: hi})
}

// Count returns the number of points in [lo, hi]: O(log_B n) I/Os when the
// reduction's black box supports counting (all but FullScan), otherwise by
// enumeration.
func (ix *RangeIndex[T]) Count(lo, hi float64) int {
	q := rangerep.Span{Lo: lo, Hi: hi}
	if p, ok := ix.eng.pri.(*rangerep.Points); ok {
		return p.Count(q)
	}
	n := 0
	ix.eng.pri.ReportAbove(q, math.Inf(-1), func(core.Item[float64]) bool {
		n++
		return true
	})
	return n
}

// Items returns a snapshot of the live points in unspecified order — the
// full state needed to persist and rebuild the index (construction is
// deterministic given the same items, options, and seed).
func (ix *RangeIndex[T]) Items() []PointItem1[T] { return ix.eng.Items() }

// QueryBatch answers one top-k range query per Span on a bounded pool of
// `parallelism` worker goroutines (GOMAXPROCS when <= 0). Each query runs
// in its own cold tracker view, so per-query Stats are independent of
// parallelism; see IntervalIndex.QueryBatch for the full contract. Must
// not run concurrently with Insert or Delete.
func (ix *RangeIndex[T]) QueryBatch(spans []Span, k int, parallelism int) []BatchResult[PointItem1[T]] {
	return ix.QueryBatchCtx(QueryCtx{}, spans, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract (see
// IntervalIndex.QueryBatchCtx); a zero ctx is exactly QueryBatch.
func (ix *RangeIndex[T]) QueryBatchCtx(ctx QueryCtx, spans []Span, k int, parallelism int) []BatchResult[PointItem1[T]] {
	qs := make([]rangerep.Span, len(spans))
	for i, s := range spans {
		qs[i] = rangerep.Span{Lo: s.Lo, Hi: s.Hi}
	}
	return ix.eng.QueryBatchCtx(ctx, qs, k, parallelism)
}

// RestoreRangeIndex reconstructs a range index from a snapshot stream
// written by Snapshot; see RestoreIntervalIndex for the warm-start
// contract shared by all Restore constructors.
func RestoreRangeIndex[T any](r io.Reader, opts ...Option) (*RangeIndex[T], error) {
	eng, err := restoreEngine(func(snap.Header) (problem[rangerep.Span, float64, PointItem1[T]], error) {
		return rangeProblem[T](), nil
	}, r, opts)
	if err != nil {
		return nil, err
	}
	return &RangeIndex[T]{newFacade(eng)}, nil
}
