package topk

import (
	"testing"

	"topk/internal/wrand"
)

// Metamorphic tests: properties that must hold between *related* runs of
// the same index, without reference to an oracle.
//
//  1. prefix: top-k(q, k) is exactly the first k items of top-k(q, k+1);
//  2. shuffle invariance: the answer set is a function of the item *set*,
//     not the construction or insertion order;
//  3. delete/reinsert invariance: deleting items and inserting them back
//     restores every query answer;
//  4. determinism: identical seeds and inputs give identical answers and
//     identical per-query I/O stats.

// metaItems is a fixed random interval workload shared by the tests.
func metaItems(g *wrand.RNG, n int) []IntervalItem[int] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]IntervalItem[int], n)
	for i := range items {
		lo := g.Float64() * 100
		items[i] = IntervalItem[int]{Lo: lo, Hi: lo + g.ExpFloat64()*10, Weight: ws[i], Data: i}
	}
	return items
}

func metaQueries(g *wrand.RNG, n int) []float64 {
	qs := make([]float64, n)
	for i := range qs {
		qs[i] = g.Float64() * 120
	}
	return qs
}

func intervalWeights(res []IntervalItem[int]) []float64 {
	return weightsOf(res, func(it IntervalItem[int]) float64 { return it.Weight })
}

// buildMeta builds one updatable interval index: half the items at
// construction, half through Insert, so the metamorphic properties cover
// the overlay's levels and tail, not just the initial static build.
func buildMeta(t *testing.T, items []IntervalItem[int], opts ...Option) *IntervalIndex[int] {
	t.Helper()
	half := len(items) / 2
	ix, err := NewIntervalIndex(items[:half], opts...)
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range items[half:] {
		if err := ix.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

func TestMetamorphicPrefix(t *testing.T) {
	g := wrand.New(301)
	items := metaItems(g, 600)
	for _, r := range []Reduction{WorstCase, Expected, BinarySearch} {
		ix := buildMeta(t, items, WithReduction(r), WithUpdates(), WithSeed(9))
		for _, x := range metaQueries(g, 25) {
			for k := 1; k <= 12; k++ {
				small := intervalWeights(ix.TopK(x, k))
				big := intervalWeights(ix.TopK(x, k+1))
				if len(big) > k+1 || len(small) > k {
					t.Fatalf("%v: overlong answer: |k|=%d |k+1|=%d", r, len(small), len(big))
				}
				limit := len(big)
				if limit > k {
					limit = k
				}
				if !sameFloats(small, big[:limit]) {
					t.Fatalf("%v x=%v k=%d: top-k %v not a prefix of top-(k+1) %v", r, x, k, small, big)
				}
			}
		}
	}
}

func TestMetamorphicShuffleInvariance(t *testing.T) {
	g := wrand.New(302)
	items := metaItems(g, 500)
	qs := metaQueries(g, 30)
	const k = 7

	base := buildMeta(t, items, WithReduction(WorstCase), WithUpdates(), WithSeed(9))
	want := make([][]float64, len(qs))
	for i, x := range qs {
		want[i] = intervalWeights(base.TopK(x, k))
	}

	for trial := 0; trial < 3; trial++ {
		shuffled := append([]IntervalItem[int](nil), items...)
		for i := len(shuffled) - 1; i > 0; i-- {
			j := g.IntN(i + 1)
			shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
		}
		ix := buildMeta(t, shuffled, WithReduction(WorstCase), WithUpdates(), WithSeed(uint64(trial)))
		for i, x := range qs {
			if got := intervalWeights(ix.TopK(x, k)); !sameFloats(got, want[i]) {
				t.Fatalf("trial %d query %v: shuffled build answers %v, original %v", trial, x, got, want[i])
			}
		}
	}
}

func TestMetamorphicDeleteReinsert(t *testing.T) {
	g := wrand.New(303)
	items := metaItems(g, 500)
	qs := metaQueries(g, 30)
	const k = 7

	ix := buildMeta(t, items, WithReduction(Expected), WithUpdates(), WithSeed(9))
	want := make([][]float64, len(qs))
	for i, x := range qs {
		want[i] = intervalWeights(ix.TopK(x, k))
	}

	// Remove a random third of the items, check they are really gone, then
	// put them back; every answer must be restored exactly.
	removed := map[int]IntervalItem[int]{}
	for len(removed) < len(items)/3 {
		j := g.IntN(len(items))
		if _, dup := removed[j]; dup {
			continue
		}
		removed[j] = items[j]
		if ok, err := ix.Delete(items[j].Weight); err != nil || !ok {
			t.Fatalf("delete weight %v: (%v, %v)", items[j].Weight, ok, err)
		}
	}
	for i, x := range qs {
		for _, w := range intervalWeights(ix.TopK(x, k)) {
			for _, it := range removed {
				if w == it.Weight {
					t.Fatalf("query %d: deleted weight %v still reported", i, w)
				}
			}
		}
	}
	for _, it := range removed {
		if err := ix.Insert(it); err != nil {
			t.Fatalf("reinsert weight %v: %v", it.Weight, err)
		}
	}
	for i, x := range qs {
		if got := intervalWeights(ix.TopK(x, k)); !sameFloats(got, want[i]) {
			t.Fatalf("query %v: after delete+reinsert got %v, want %v", x, got, want[i])
		}
	}
	if ix.Len() != len(items) {
		t.Fatalf("Len() = %d, want %d", ix.Len(), len(items))
	}
}

func TestMetamorphicDeterminism(t *testing.T) {
	g := wrand.New(304)
	items := metaItems(g, 400)
	qs := metaQueries(g, 20)
	const k = 6

	build := func() *IntervalIndex[int] {
		return buildMeta(t, items, WithReduction(Expected), WithUpdates(), WithSeed(42))
	}
	a, b := build(), build()
	resA := a.QueryBatch(qs, k, 4)
	resB := b.QueryBatch(qs, k, 1)
	for i := range qs {
		wa, wb := intervalWeights(resA[i].Items), intervalWeights(resB[i].Items)
		if !sameFloats(wa, wb) {
			t.Fatalf("query %d: twin builds disagree: %v vs %v", i, wa, wb)
		}
		if resA[i].Stats != resB[i].Stats {
			t.Fatalf("query %d: twin builds report different per-query stats: %+v vs %+v",
				i, resA[i].Stats, resB[i].Stats)
		}
	}
	if sa, sb := a.Stats(), b.Stats(); sa.Blocks != sb.Blocks {
		t.Fatalf("twin builds occupy different space: %d vs %d blocks", sa.Blocks, sb.Blocks)
	}
}
