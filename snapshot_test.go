package topk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"topk/internal/snap"
)

// This file is the persistence conformance suite (DESIGN.md §12): for
// every registered problem × reduction × shard count, a snapshotted and
// restored index must answer every query byte-identically to the
// original, at a restore cost of one sequential read pass instead of a
// rebuild. Like conformance_test.go it iterates RegisteredProblems(), so
// new problems are covered the moment their ProblemSpec lands.

// answersOf collects a deterministic answer transcript from a served
// index: top-k at several k, max, and report-above for each query.
// Weights and labels both participate, so any payload divergence fails
// DeepEqual.
func answersOf(sv Served, qs []any) []ServedItem {
	var out []ServedItem
	for _, q := range qs {
		for _, k := range []int{1, 5, 50} {
			out = append(out, sv.TopK(q, k)...)
		}
		if m, ok := sv.Max(q); ok {
			out = append(out, m)
		}
		if m, ok := sv.Max(q); ok {
			above := sv.ReportAbove(q, m.Weight/2)
			// ReportAbove order is unspecified; canonicalize by weight set
			// size plus the max element so shard merge order can't matter.
			out = append(out, ServedItem{Weight: float64(len(above)), Label: "count"})
		}
	}
	return out
}

func TestConformanceSnapshotRoundTrip(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for _, r := range AllReductions() {
			for _, shards := range []int{1, 2, 8} {
				t.Run(fmt.Sprintf("%s/%v/shards=%d", spec.Name, r, shards), func(t *testing.T) {
					var (
						sv  Served
						err error
					)
					if shards > 1 {
						sv, err = spec.BuildSharded(confN, shards, confSeed, WithReduction(r))
					} else {
						sv, err = spec.Build(confN, confSeed, WithReduction(r))
					}
					if err != nil {
						t.Fatal(err)
					}

					dir := t.TempDir()
					if err := sv.Snapshot(dir); err != nil {
						t.Fatalf("snapshot: %v", err)
					}
					restored, err := spec.Restore(dir)
					if err != nil {
						t.Fatalf("restore: %v", err)
					}

					if restored.Len() != sv.Len() {
						t.Fatalf("restored Len = %d, want %d", restored.Len(), sv.Len())
					}
					if restored.Shards() != sv.Shards() {
						t.Fatalf("restored Shards = %d, want %d", restored.Shards(), sv.Shards())
					}
					if got, want := restored.ShardSizes(), sv.ShardSizes(); !reflect.DeepEqual(got, want) {
						t.Fatalf("restored ShardSizes = %v, want %v", got, want)
					}

					qs := sv.GenQueries(8, confQSeed)
					if got, want := answersOf(restored, qs), answersOf(sv, qs); !reflect.DeepEqual(got, want) {
						t.Fatalf("restored answers diverge from original\n  restored: %v\n  original: %v", got, want)
					}

					// Stats shape: same reduction, same space usage (the
					// rebuild is deterministic), flow counters rewritten to
					// one sequential pass — reads > 0, zero writes.
					sv.ResetStats()
					os, rs := sv.Stats(), restored.Stats()
					if rs.Reduction != os.Reduction {
						t.Fatalf("restored reduction %v, want %v", rs.Reduction, os.Reduction)
					}
					if rs.Blocks != os.Blocks {
						t.Fatalf("restored Blocks = %d, want %d", rs.Blocks, os.Blocks)
					}
					if rs.Reads <= 0 || rs.Writes != 0 {
						t.Fatalf("restore cost Reads=%d Writes=%d, want one sequential read pass and no writes", rs.Reads, rs.Writes)
					}

					// LoadSnapshot dispatches on the manifest and must land
					// on the same problem and answers.
					loaded, err := LoadSnapshot(dir)
					if err != nil {
						t.Fatalf("LoadSnapshot: %v", err)
					}
					if loaded.Problem() != spec.Name {
						t.Fatalf("LoadSnapshot problem %q, want %q", loaded.Problem(), spec.Name)
					}
					if got, want := answersOf(loaded, qs), answersOf(sv, qs); !reflect.DeepEqual(got, want) {
						t.Fatal("LoadSnapshot answers diverge from original")
					}
				})
			}
		}
	}
}

// TestConformanceSnapshotAfterUpdates snapshots an overlay index mid-life
// — after inserts and deletes, with levels, tombstones, and a partial
// tail — and checks the restored index continues identically, including
// through further updates.
func TestConformanceSnapshotAfterUpdates(t *testing.T) {
	for _, spec := range RegisteredProblems() {
		for _, shards := range []int{1, 2} {
			t.Run(fmt.Sprintf("%s/shards=%d", spec.Name, shards), func(t *testing.T) {
				var (
					sv  Served
					err error
				)
				if shards > 1 {
					sv, err = spec.BuildSharded(confN, shards, confSeed, WithUpdates())
				} else {
					sv, err = spec.Build(confN, confSeed, WithUpdates())
				}
				if err != nil {
					t.Fatal(err)
				}
				var fresh []float64
				for i := 0; i < 40; i++ {
					w, err := sv.InsertFresh(uint64(1000 + i))
					if err != nil {
						t.Fatal(err)
					}
					fresh = append(fresh, w)
				}
				for _, w := range fresh[:10] {
					if ok, err := sv.Delete(w); err != nil || !ok {
						t.Fatalf("delete %v: ok=%v err=%v", w, ok, err)
					}
				}

				dir := t.TempDir()
				if err := sv.Snapshot(dir); err != nil {
					t.Fatalf("snapshot: %v", err)
				}
				restored, err := spec.Restore(dir)
				if err != nil {
					t.Fatalf("restore: %v", err)
				}
				if restored.Len() != sv.Len() {
					t.Fatalf("restored Len = %d, want %d", restored.Len(), sv.Len())
				}
				qs := sv.GenQueries(8, confQSeed)
				if got, want := answersOf(restored, qs), answersOf(sv, qs); !reflect.DeepEqual(got, want) {
					t.Fatal("restored answers diverge from original after updates")
				}

				// The restored index keeps working as a dynamic structure,
				// in lockstep with the original.
				for i := 0; i < 10; i++ {
					wo, err := sv.InsertFresh(uint64(5000 + i))
					if err != nil {
						t.Fatal(err)
					}
					wr, err := restored.InsertFresh(uint64(5000 + i))
					if err != nil {
						t.Fatal(err)
					}
					if wo != wr {
						t.Fatalf("InsertFresh diverged: %v vs %v", wo, wr)
					}
				}
				if ok, err := restored.Delete(fresh[20]); err != nil || !ok {
					t.Fatalf("restored delete: ok=%v err=%v", ok, err)
				}
				if ok, _ := restored.Delete(fresh[0]); ok {
					t.Fatal("restored index resurrected a deleted weight")
				}
				if _, err := sv.Delete(fresh[20]); err != nil {
					t.Fatal(err)
				}
				if got, want := answersOf(restored, qs), answersOf(sv, qs); !reflect.DeepEqual(got, want) {
					t.Fatal("restored answers diverge after post-restore updates")
				}
			})
		}
	}
}

// TestSnapshotStreamCorruption feeds damaged snapshot streams to a typed
// restore constructor: every case must return a descriptive error — and
// never panic, which the fuzz target FuzzSnapshotRestore extends to
// arbitrary bytes.
func TestSnapshotStreamCorruption(t *testing.T) {
	ix, err := NewIntervalIndex([]IntervalItem[int]{
		{Lo: 0, Hi: 10, Weight: 1, Data: 1},
		{Lo: 5, Hi: 15, Weight: 2, Data: 2},
		{Lo: 8, Hi: 20, Weight: 3, Data: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ix.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	flip := func(off int) []byte {
		b := append([]byte(nil), valid...)
		b[off] ^= 0xFF
		return b
	}
	cases := []struct {
		name    string
		input   []byte
		wantSub string
	}{
		{"empty", nil, "truncated"},
		{"bad magic", flip(0), "magic"},
		{"unknown version", flip(4), "version"},
		{"flipped payload byte", flip(20), "checksum"},
		// The stream tail is [..payload][crc32][SecEnd: type u16, len
		// u32, crc u32]; len(valid)-11 lands in the last data section's
		// checksum.
		{"flipped trailing checksum", flip(len(valid) - 11), "checksum"},
		{"truncated mid-section", valid[:len(valid)/2], "unexpected EOF"},
		{"missing end marker", valid[:len(valid)-6], "unexpected EOF"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := RestoreIntervalIndex[int](bytes.NewReader(tc.input))
			if err == nil {
				t.Fatal("corrupt stream restored without error")
			}
			if !strings.Contains(err.Error(), tc.wantSub) {
				t.Fatalf("error %q does not mention %q", err, tc.wantSub)
			}
		})
	}

	// Cross-problem restore: the header names the snapshotted problem,
	// so feeding interval bytes to the range constructor must fail with
	// both names in the message.
	if _, err := RestoreRangeIndex[int](bytes.NewReader(valid)); err == nil {
		t.Fatal("range constructor accepted an interval snapshot")
	} else if !strings.Contains(err.Error(), "interval") || !strings.Contains(err.Error(), "range") {
		t.Fatalf("cross-problem error %q should name both problems", err)
	}
}

// TestSnapshotDirCorruption damages snapshot directories — the manifest
// and the shard files it indexes — and checks Restore reports what went
// wrong instead of restoring silently-wrong state.
func TestSnapshotDirCorruption(t *testing.T) {
	spec, ok := ProblemByName("interval")
	if !ok {
		t.Fatal("interval not registered")
	}
	build := func(t *testing.T, shards int) string {
		sv, err := spec.BuildSharded(confN, shards, confSeed)
		if err != nil {
			t.Fatal(err)
		}
		dir := t.TempDir()
		if err := sv.Snapshot(dir); err != nil {
			t.Fatal(err)
		}
		return dir
	}

	t.Run("missing manifest", func(t *testing.T) {
		_, err := spec.Restore(t.TempDir())
		if err == nil || !strings.Contains(err.Error(), "manifest") {
			t.Fatalf("err = %v, want manifest error", err)
		}
	})
	t.Run("future format version", func(t *testing.T) {
		dir := build(t, 2)
		path := filepath.Join(dir, ManifestName)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw = bytes.Replace(raw, []byte(fmt.Sprintf(`"format_version": %d`, snap.Version)), []byte(`"format_version": 99`), 1)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = spec.Restore(dir)
		if err == nil || !strings.Contains(err.Error(), "version") {
			t.Fatalf("err = %v, want version error", err)
		}
	})
	t.Run("shard file corrupted", func(t *testing.T) {
		dir := build(t, 2)
		path := filepath.Join(dir, "shard-001.snap")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw[len(raw)/2] ^= 0xFF
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = spec.Restore(dir)
		if err == nil || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("err = %v, want checksum error", err)
		}
	})
	t.Run("shard file truncated", func(t *testing.T) {
		dir := build(t, 2)
		path := filepath.Join(dir, "shard-000.snap")
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw[:len(raw)-10], 0o644); err != nil {
			t.Fatal(err)
		}
		_, err = spec.Restore(dir)
		if err == nil {
			t.Fatal("truncated shard file restored without error")
		}
	})
	t.Run("shard file missing", func(t *testing.T) {
		dir := build(t, 2)
		if err := os.Remove(filepath.Join(dir, "shard-001.snap")); err != nil {
			t.Fatal(err)
		}
		if _, err := spec.Restore(dir); err == nil {
			t.Fatal("restore succeeded with a missing shard file")
		}
	})
	t.Run("unknown problem in manifest", func(t *testing.T) {
		dir := build(t, 1)
		path := filepath.Join(dir, ManifestName)
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		raw = bytes.Replace(raw, []byte(`"problem": "interval"`), []byte(`"problem": "nonesuch"`), 1)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadSnapshot(dir); err == nil || !strings.Contains(err.Error(), "nonesuch") {
			t.Fatalf("err = %v, want unknown-problem error", err)
		}
	})
}

// TestSnapshotReshard checks the bulk shard-shipping transform: a
// snapshot rewritten at a different shard count serves the same items
// with the same answers.
func TestSnapshotReshard(t *testing.T) {
	spec, ok := ProblemByName("interval")
	if !ok {
		t.Fatal("interval not registered")
	}
	sv, err := spec.BuildSharded(confN, 8, confSeed)
	if err != nil {
		t.Fatal(err)
	}
	src := t.TempDir()
	if err := sv.Snapshot(src); err != nil {
		t.Fatal(err)
	}
	for _, shards := range []int{1, 2, 8} {
		dst := t.TempDir()
		if err := spec.Reshard(src, dst, shards); err != nil {
			t.Fatalf("reshard to %d: %v", shards, err)
		}
		re, err := spec.Restore(dst)
		if err != nil {
			t.Fatalf("restore resharded(%d): %v", shards, err)
		}
		if re.Shards() != shards {
			t.Fatalf("resharded Shards = %d, want %d", re.Shards(), shards)
		}
		if re.Len() != sv.Len() {
			t.Fatalf("resharded Len = %d, want %d", re.Len(), sv.Len())
		}
		qs := sv.GenQueries(8, confQSeed)
		if got, want := answersOf(re, qs), answersOf(sv, qs); !reflect.DeepEqual(got, want) {
			t.Fatalf("resharded(%d) answers diverge from original", shards)
		}
	}
}
