package topk

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"testing"
	"time"

	"topk/internal/wrand"
)

// decodeChrome round-trips a WriteChromeTrace document back into its
// event rows for assertions.
func decodeChrome(t *testing.T, buf *bytes.Buffer) chromeFile {
	t.Helper()
	var f chromeFile
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}
	if f.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	return f
}

// TestWriteChromeTraceSynthetic pins the forest reconstruction and
// layout rules on a hand-built post-order stream: two depth-1 children
// close before their depth-0 parent, children are laid out sequentially
// from the parent's start, and the parent spans at least its own I/Os.
func TestWriteChromeTraceSynthetic(t *testing.T) {
	events := []TraceEvent{
		{Phase: "t1.probe", Depth: 1, Level: 2, Reads: 3},
		{Phase: "t1.refine", Depth: 1, Level: -1, Reads: 2, Arg: 7},
		{Phase: "t1.topk", Depth: 0, Level: -1, Reads: 6, Writes: 1},
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, []NamedTrace{{Name: "q0", Events: events}}); err != nil {
		t.Fatal(err)
	}
	f := decodeChrome(t, &buf)
	if len(f.TraceEvents) != 4 { // 1 metadata + 3 spans
		t.Fatalf("got %d events, want 4: %+v", len(f.TraceEvents), f.TraceEvents)
	}
	meta := f.TraceEvents[0]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "q0" {
		t.Fatalf("metadata event %+v", meta)
	}
	byName := map[string]chromeEvent{}
	for _, ev := range f.TraceEvents[1:] {
		if ev.Ph != "X" {
			t.Fatalf("span %q has phase %q, want X", ev.Name, ev.Ph)
		}
		if ev.TID != meta.TID {
			t.Fatalf("span %q on tid %d, metadata on %d", ev.Name, ev.TID, meta.TID)
		}
		byName[ev.Name] = ev
	}
	root, probe, refine := byName["t1.topk"], byName["t1.probe"], byName["t1.refine"]
	if root.TS != 0 || root.Dur != 7 {
		t.Fatalf("root ts=%d dur=%d, want 0/7 (6 reads + 1 write)", root.TS, root.Dur)
	}
	if probe.TS != 0 || probe.Dur != 3 {
		t.Fatalf("probe ts=%d dur=%d, want 0/3", probe.TS, probe.Dur)
	}
	if refine.TS != 3 || refine.Dur != 2 {
		t.Fatalf("refine ts=%d dur=%d, want 3/2 (sequential after probe)", refine.TS, refine.Dur)
	}
	if probe.Args["level"] != float64(2) {
		t.Fatalf("probe level arg = %v, want 2", probe.Args["level"])
	}
	if _, has := root.Args["level"]; has {
		t.Fatal("level -1 must be omitted from args")
	}
	if refine.Args["arg"] != float64(7) {
		t.Fatalf("refine arg = %v, want 7", refine.Args["arg"])
	}
}

// TestWriteChromeTraceZeroCostSpans: spans with no I/Os still render
// with the 1µs floor so the tree stays visible, and an empty trace
// yields just its lane metadata.
func TestWriteChromeTraceZeroCostSpans(t *testing.T) {
	var buf bytes.Buffer
	traces := []NamedTrace{
		{Events: []TraceEvent{{Phase: "dyn.empty", Depth: 0, Level: -1}}},
		{Name: "idle"},
	}
	if err := WriteChromeTrace(&buf, traces); err != nil {
		t.Fatal(err)
	}
	f := decodeChrome(t, &buf)
	if len(f.TraceEvents) != 3 {
		t.Fatalf("got %d events, want 3 (2 metadata + 1 span)", len(f.TraceEvents))
	}
	if f.TraceEvents[0].Args["name"] != "query" {
		t.Fatalf("empty trace name rendered as %v, want the \"query\" default", f.TraceEvents[0].Args["name"])
	}
	span := f.TraceEvents[1]
	if span.Ph != "X" || span.Dur != 1 {
		t.Fatalf("zero-cost span %+v, want dur 1", span)
	}
	if f.TraceEvents[2].Args["name"] != "idle" {
		t.Fatalf("second lane metadata %+v", f.TraceEvents[2])
	}
	if f.TraceEvents[2].TID == span.TID {
		t.Fatal("distinct traces must land on distinct tid lanes")
	}
}

// TestWriteChromeTraceFromRealQuery exports actual batch traces and
// checks the structural invariants hold for arbitrary recorded streams:
// one X event per recorded span, every duration ≥ 1, and children
// contained within their parent's [ts, ts+dur) window.
func TestWriteChromeTraceFromRealQuery(t *testing.T) {
	g := wrand.New(909)
	items := genIntervalItems(g, 400)
	ix, err := NewIntervalIndex(items, WithReduction(Expected), WithSeed(5), WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	res := ix.QueryBatch([]float64{20, 60, 100}, 8, 1)
	var traces []NamedTrace
	spans := 0
	for _, r := range res {
		if len(r.Trace) == 0 {
			t.Fatal("traced batch query returned no trace")
		}
		spans += len(r.Trace)
		traces = append(traces, NamedTrace{Name: "q", Events: r.Trace})
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, traces); err != nil {
		t.Fatal(err)
	}
	f := decodeChrome(t, &buf)
	var xs []chromeEvent
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" {
			xs = append(xs, ev)
			if ev.Dur < 1 {
				t.Fatalf("span %q has duration %d < 1", ev.Name, ev.Dur)
			}
		}
	}
	if len(xs) != spans {
		t.Fatalf("rendered %d spans, recorded %d", len(xs), spans)
	}
	// Every span either is a lane root or nests fully inside some other
	// same-lane span (a strictly larger window).
	for i, ev := range xs {
		nested := false
		for j, other := range xs {
			if i == j || other.TID != ev.TID {
				continue
			}
			if other.TS <= ev.TS && ev.TS+ev.Dur <= other.TS+other.Dur && other.Dur >= ev.Dur {
				nested = true
			}
		}
		if !nested && ev.TS != 0 && ev.Dur != 0 {
			// A root starts where the previous root ended; just require
			// that some same-lane span ends exactly at this span's start.
			ok := false
			for j, other := range xs {
				if i != j && other.TID == ev.TID && other.TS+other.Dur == ev.TS {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("span %q [%d,%d) is neither nested nor adjacent to a prior span", ev.Name, ev.TS, ev.TS+ev.Dur)
			}
		}
	}
}

// TestWithQueryLogWideEvents drives the wide-event log end to end: every
// query emits exactly one NDJSON row with the identity/cost/outcome
// schema, lifecycle limits appear on budgeted queries, and aborted or
// degraded endings are named.
func TestWithQueryLogWideEvents(t *testing.T) {
	g := wrand.New(910)
	items := genIntervalItems(g, 400)
	var buf bytes.Buffer
	ix, err := NewIntervalIndex(items,
		WithReduction(Expected), WithSeed(5), WithTracing(), WithQueryLog(&buf))
	if err != nil {
		t.Fatal(err)
	}
	xs := []float64{20, 60, 100}
	ix.QueryBatch(xs, 8, 1)
	deadline := time.Now().Add(time.Hour)
	ix.QueryBatchCtx(QueryCtx{IOBudget: 1, DegradeToMax: true, Deadline: deadline}, xs, 8, 1)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2*len(xs) {
		t.Fatalf("got %d wide events, want %d:\n%s", len(lines), 2*len(xs), buf.String())
	}
	sawDegraded := false
	for i, line := range lines {
		var ev map[string]any
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i, err, line)
		}
		for _, field := range []string{"ts", "problem", "query", "reads", "writes", "hits", "ios", "hit_rate", "latency_us", "outcome"} {
			if _, ok := ev[field]; !ok {
				t.Fatalf("line %d missing %q: %s", i, field, line)
			}
		}
		if ev["problem"] != "interval" {
			t.Fatalf("line %d problem = %v", i, ev["problem"])
		}
		if _, err := time.Parse(time.RFC3339Nano, ev["ts"].(string)); err != nil {
			t.Fatalf("line %d ts: %v", i, err)
		}
		if i < len(xs) {
			// Plain batch: no limits, ok outcome, no lifecycle fields.
			if ev["outcome"] != "ok" {
				t.Fatalf("plain query %d outcome = %v", i, ev["outcome"])
			}
			if _, ok := ev["budget_ios"]; ok {
				t.Fatalf("plain query %d carries budget_ios", i)
			}
			if _, ok := ev["deadline_slack_us"]; ok {
				t.Fatalf("plain query %d carries deadline_slack_us", i)
			}
		} else {
			if ev["budget_ios"] != float64(1) {
				t.Fatalf("budgeted query %d budget_ios = %v, want 1", i, ev["budget_ios"])
			}
			slack, ok := ev["deadline_slack_us"].(float64)
			if !ok || slack <= 0 {
				t.Fatalf("budgeted query %d deadline_slack_us = %v, want positive", i, ev["deadline_slack_us"])
			}
			if ev["outcome"] == "degraded" {
				sawDegraded = true
			}
		}
	}
	if !sawDegraded {
		t.Fatal("no degraded outcome logged under a 1-I/O budget with DegradeToMax")
	}
}

// TestUpdateCostSeries pins the per-operation amortized-cost split: a
// churned overlay index exports topk_update_ios as a summary whose
// count equals the number of Insert/Delete calls, with flush and
// rebuild spikes separated into their own series instead of averaged
// into the update median.
func TestUpdateCostSeries(t *testing.T) {
	ix, err := NewIntervalIndex([]IntervalItem[int]{},
		WithReduction(WorstCase), WithUpdates(), WithSeed(3), WithMetrics(), WithTracing())
	if err != nil {
		t.Fatal(err)
	}
	g := wrand.New(77)
	ops := 0
	for i := 0; i < 200; i++ {
		lo := g.Float64() * 100
		if err := ix.Insert(IntervalItem[int]{Lo: lo, Hi: lo + 5, Weight: g.Float64(), Data: i}); err != nil {
			t.Fatal(err)
		}
		ops++
	}
	var b strings.Builder
	if err := ix.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if want := "topk_update_ios_count{index=\"interval\"} 200"; !strings.Contains(out, want) {
		t.Fatalf("update-cost series does not count all %d operations; missing %q in:\n%s", ops, want, out)
	}
	for _, series := range []string{
		`topk_update_ios{index="interval",quantile="0.5"}`,
		`topk_update_ios{index="interval",quantile="0.999"}`,
		`topk_flush_ios_count{index="interval"}`,
		`topk_rebuild_ios_count{index="interval"}`,
	} {
		if !strings.Contains(out, series) {
			t.Fatalf("missing series %q in exposition", series)
		}
	}
	// 200 inserts through the logarithmic overlay must have flushed the
	// tail at least once, and the flush series must have registered it.
	flushes := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `topk_flush_ios_count{index="interval"} `) {
			fmt.Sscanf(line, `topk_flush_ios_count{index="interval"} %d`, &flushes)
		}
	}
	if flushes == 0 {
		t.Fatal("no flush spikes recorded after 200 overlay inserts")
	}
}
