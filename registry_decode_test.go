package topk

import (
	"encoding/json"
	"testing"
)

// decodeCases maps each registered problem to wire payloads its
// DecodeQuery must accept or reject. The bad lists cover the three
// error families of the /query surface: malformed JSON (including the
// NaN literal, which JSON has no encoding for), wrong-type payloads,
// and wrong-arity coordinate lists.
var decodeCases = map[string]struct {
	good []string
	bad  []string
}{
	"interval": {
		good: []string{`12.5`, `0`},
		bad:  []string{`{`, `"x"`, `[1, 2]`, `NaN`},
	},
	"range": {
		good: []string{`[1, 5]`},
		bad:  []string{`{`, `"a"`, `[1]`, `[1, 2, 3]`, `[NaN, 2]`},
	},
	"ortho": {
		good: []string{`{"lo": [0, 0], "hi": [5, 5]}`},
		bad: []string{
			`{`,
			`[0, 0, 5, 5]`,
			`{"lo": [0], "hi": [5, 5]}`,
			`{"lo": [0, 0, 0], "hi": [5, 5, 5]}`,
			`{"lo": [9, 9], "hi": [0, 0]}`,
			`{"lo": [NaN, 0], "hi": [5, 5]}`,
		},
	},
	"circular": {
		good: []string{`{"center": [1, 2], "radius": 3}`},
		bad: []string{
			`{`,
			`[1, 2, 3]`,
			`{"center": [1], "radius": 3}`,
			`{"center": [1, 2, 3], "radius": 3}`,
			`{"center": [NaN, 2], "radius": 3}`,
		},
	},
	"dominance": {
		good: []string{`[1, 2, 3]`},
		bad:  []string{`{`, `"x"`, `[1, 2]`, `[1, 2, 3, 4]`, `[NaN, 2, 3]`},
	},
	"enclosure": {
		good: []string{`[1, 2]`},
		bad:  []string{`{`, `"x"`, `[1]`, `[1, 2, 3]`, `[NaN, 2]`},
	},
	"halfplane": {
		good: []string{`[1, -1, 0]`},
		bad:  []string{`{`, `"x"`, `[1, 2]`, `[1, 2, 3, 4]`, `[NaN, 1, 0]`},
	},
	"halfspace": {
		good: []string{`{"a": [1, 0, 0], "c": 0}`},
		bad: []string{
			`{`,
			`[1, 0, 0]`,
			`{"a": [1, 0], "c": 0}`,
			`{"a": [1, 0, 0, 0], "c": 0}`,
			`{"a": [NaN, 0, 0], "c": 0}`,
		},
	},
}

// TestRegistryDecodeQuery checks every problem's /query wire decoding:
// good payloads decode into queries the index actually answers, and
// each bad payload is rejected with an error instead of a panic or a
// silently mangled query.
func TestRegistryDecodeQuery(t *testing.T) {
	covered := map[string]bool{}
	for _, spec := range RegisteredProblems() {
		cases, ok := decodeCases[spec.Name]
		if !ok {
			t.Errorf("no decode cases for registered problem %q — add them to decodeCases", spec.Name)
			continue
		}
		covered[spec.Name] = true
		t.Run(spec.Name, func(t *testing.T) {
			sv, err := spec.Build(50, confSeed)
			if err != nil {
				t.Fatal(err)
			}
			for _, raw := range cases.good {
				q, err := sv.DecodeQuery(json.RawMessage(raw))
				if err != nil {
					t.Fatalf("DecodeQuery(%s): %v", raw, err)
				}
				// The decoded query must be usable end to end.
				got := sv.TopK(q, 3)
				if want := sv.Oracle(q); len(want) > 0 && (len(got) == 0 || got[0].Weight != want[0].Weight) {
					t.Fatalf("decoded query %s answered wrong: got %v, oracle head %v", raw, got, want[0])
				}
			}
			for _, raw := range cases.bad {
				if q, err := sv.DecodeQuery(json.RawMessage(raw)); err == nil {
					t.Fatalf("DecodeQuery(%s) accepted a malformed payload: %#v", raw, q)
				}
			}
		})
	}
	for name := range decodeCases {
		if !covered[name] {
			t.Errorf("decode cases for %q cover no registered problem", name)
		}
	}
}
