package topk

import (
	"io"
	"math"
	"strconv"
	"strings"
	"testing"

	"topk/internal/wrand"
)

// The tests in this file pin the observability contract across every
// index facade:
//
//  1. sum invariant: a batch query's depth-0 trace spans partition its
//     QueryStats exactly — Reads, Writes, and Hits each sum to the
//     query's own counters (any residual appears as "em.unattributed");
//  2. observer effect: enabling tracing and metrics does not change any
//     per-query I/O count;
//  3. exposition: WriteMetrics emits a parseable Prometheus snapshot
//     containing the topk_query_ios and topk_t2_rounds histograms.

// checkTraces asserts the sum invariant over a batch's results and
// returns the total number of depth-0 events seen.
func checkTraces[R any](t *testing.T, name string, results []BatchResult[R]) int {
	t.Helper()
	events := 0
	for i, r := range results {
		var reads, writes, hits int64
		for _, ev := range r.Trace {
			if ev.Depth != 0 {
				continue
			}
			events++
			reads += ev.Reads
			writes += ev.Writes
			hits += ev.Hits
		}
		if reads != r.Stats.Reads || writes != r.Stats.Writes || hits != r.Stats.Hits {
			t.Fatalf("%s query %d: depth-0 trace sums (r=%d w=%d h=%d) != stats %+v\ntrace: %+v",
				name, i, reads, writes, hits, r.Stats, r.Trace)
		}
		if r.Stats.IOs() > 0 && len(r.Trace) == 0 {
			t.Fatalf("%s query %d: %d IOs but empty trace", name, i, r.Stats.IOs())
		}
	}
	return events
}

// checkMetrics asserts the index's Prometheus snapshot carries the two
// query histograms with at least nq observations on the I/O one.
func checkMetrics(t *testing.T, name string, write func(io.Writer) error, nq int) {
	t.Helper()
	var b strings.Builder
	if err := write(&b); err != nil {
		t.Fatalf("%s: WriteMetrics: %v", name, err)
	}
	out := b.String()
	for _, want := range []string{
		"topk_query_ios_bucket{", "topk_t2_rounds_bucket{",
		"topk_query_ios_count{", "topk_queries_total{",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("%s: metrics missing %q:\n%s", name, want, out)
		}
	}
	if !strings.Contains(out, `index="`+name+`"`) {
		t.Fatalf("%s: metrics missing index label:\n%s", name, out)
	}
	// Every batch query must have been observed into the I/O histogram.
	var count string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "topk_query_ios_count{") {
			count = line[strings.LastIndexByte(line, ' ')+1:]
		}
	}
	if want := strconv.Itoa(nq); count != want {
		t.Fatalf("%s: topk_query_ios_count = %s, want %s", name, count, want)
	}
}

// traceOpts is the standard instrumented build used by every sub-test.
func traceOpts(r Reduction, extra ...Option) []Option {
	opts := []Option{WithReduction(r), WithSeed(5), WithTracing(), WithMetrics()}
	return append(opts, extra...)
}

func TestTraceInvariantInterval(t *testing.T) {
	g := wrand.New(201)
	items := genIntervalItems(g, 600)
	ix, err := NewIntervalIndex(items, traceOpts(Expected)...)
	if err != nil {
		t.Fatal(err)
	}
	xs := make([]float64, 32)
	for i := range xs {
		xs[i] = g.Float64() * 120
	}
	res := ix.QueryBatch(xs, 8, 8)
	if n := checkTraces(t, "interval", res); n == 0 {
		t.Fatal("no depth-0 events recorded")
	}
	checkMetrics(t, "interval", ix.WriteMetrics, len(xs))

	// Traced batch stats must equal untraced ones: the observer-effect
	// guarantee, checked against a plain build of the same index.
	plain, err := NewIntervalIndex(items, WithReduction(Expected), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range plain.QueryBatch(xs, 8, 8) {
		if r.Stats != res[i].Stats {
			t.Fatalf("query %d: traced stats %+v != plain stats %+v", i, res[i].Stats, r.Stats)
		}
	}
}

func TestTraceInvariantRange(t *testing.T) {
	g := wrand.New(202)
	n := 500
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItem1[int], n)
	for i := range items {
		items[i] = PointItem1[int]{Pos: g.Float64() * 100, Weight: ws[i], Data: i}
	}
	ix, err := NewRangeIndex(items, traceOpts(WorstCase)...)
	if err != nil {
		t.Fatal(err)
	}
	spans := make([]Span, 24)
	for i := range spans {
		lo := g.Float64() * 100
		spans[i] = Span{Lo: lo, Hi: lo + g.Float64()*30}
	}
	res := ix.QueryBatch(spans, 6, 8)
	checkTraces(t, "range", res)
	checkMetrics(t, "range", ix.WriteMetrics, len(spans))

	// WorstCase traces must attribute cost to Theorem 1 phases.
	sawT1 := false
	for _, r := range res {
		for _, ev := range r.Trace {
			if strings.HasPrefix(ev.Phase, "t1.") {
				sawT1 = true
			}
		}
	}
	if !sawT1 {
		t.Fatal("no t1.* phases in WorstCase traces")
	}
}

func TestTraceInvariantOrtho(t *testing.T) {
	g := wrand.New(203)
	const n, d = 350, 2
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{Coords: []float64{g.Float64() * 100, g.Float64() * 100}, Weight: ws[i], Data: i}
	}
	ix, err := NewOrthoIndex(items, d, traceOpts(Expected)...)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]BoxQuery, 20)
	for i := range qs {
		lo := []float64{g.Float64() * 70, g.Float64() * 70}
		qs[i] = BoxQuery{Lo: lo, Hi: []float64{lo[0] + 20, lo[1] + 20}}
	}
	res, err := ix.QueryBatch(qs, 6, 8)
	if err != nil {
		t.Fatal(err)
	}
	checkTraces(t, "ortho", res)
	checkMetrics(t, "ortho", ix.WriteMetrics, len(qs))
}

func TestTraceInvariantEnclosureOverlay(t *testing.T) {
	g := wrand.New(204)
	n := 400
	ws := g.UniqueFloats(n, 1e6)
	items := make([]RectItem[int], n)
	for i := range items {
		x1, y1 := g.Float64()*100, g.Float64()*100
		items[i] = RectItem[int]{X1: x1, X2: x1 + g.ExpFloat64()*12, Y1: y1, Y2: y1 + g.ExpFloat64()*12, Weight: ws[i], Data: i}
	}
	// The overlay build exercises the dyn.* span family on the query path.
	ix, err := NewEnclosureIndex(items, traceOpts(WorstCase, WithUpdates())...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		x1, y1 := g.Float64()*100, g.Float64()*100
		it := RectItem[int]{X1: x1, X2: x1 + 5, Y1: y1, Y2: y1 + 5, Weight: 2e6 + float64(i), Data: i}
		if err := ix.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	qs := make([]PointQuery, 20)
	for i := range qs {
		qs[i] = PointQuery{X: g.Float64() * 120, Y: g.Float64() * 120}
	}
	res := ix.QueryBatch(qs, 6, 8)
	checkTraces(t, "enclosure", res)
	checkMetrics(t, "enclosure", ix.WriteMetrics, len(qs))

	sawDyn := false
	for _, r := range res {
		for _, ev := range r.Trace {
			if strings.HasPrefix(ev.Phase, "dyn.") {
				sawDyn = true
			}
		}
	}
	if !sawDyn {
		t.Fatal("no dyn.* phases in overlay traces")
	}
}

func TestTraceInvariantDominance(t *testing.T) {
	g := wrand.New(205)
	items := genDomItems(g, 450)
	ix, err := NewDominanceIndex(items, traceOpts(Expected)...)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]CornerQuery, 20)
	for i := range qs {
		qs[i] = CornerQuery{X: g.Float64() * 110, Y: g.Float64() * 110, Z: g.Float64() * 110}
	}
	res := ix.QueryBatch(qs, 6, 8)
	checkTraces(t, "dominance", res)
	checkMetrics(t, "dominance", ix.WriteMetrics, len(qs))
}

func TestTraceInvariantHalfplane(t *testing.T) {
	g := wrand.New(206)
	n := 400
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItem2[int], n)
	for i := range items {
		items[i] = PointItem2[int]{X: g.NormFloat64() * 10, Y: g.NormFloat64() * 10, Weight: ws[i], Data: i}
	}
	ix, err := NewHalfplaneIndex(items, traceOpts(Expected)...)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]HalfplaneQuery, 20)
	for i := range qs {
		theta := g.Float64() * 2 * math.Pi
		qs[i] = HalfplaneQuery{A: math.Cos(theta), B: math.Sin(theta), C: g.NormFloat64() * 8}
	}
	res := ix.QueryBatch(qs, 6, 8)
	checkTraces(t, "halfplane", res)
	checkMetrics(t, "halfplane", ix.WriteMetrics, len(qs))
}

func TestTraceInvariantHalfspace(t *testing.T) {
	g := wrand.New(207)
	const n, d = 300, 3
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{
			Coords: []float64{g.NormFloat64() * 10, g.NormFloat64() * 10, g.NormFloat64() * 10},
			Weight: ws[i], Data: i,
		}
	}
	ix, err := NewHalfspaceIndex(items, d, traceOpts(WorstCase)...)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]HalfspaceQuery, 16)
	for i := range qs {
		qs[i] = HalfspaceQuery{A: []float64{g.NormFloat64(), g.NormFloat64(), g.NormFloat64()}, C: g.NormFloat64() * 5}
	}
	res := ix.QueryBatch(qs, 5, 8)
	checkTraces(t, "halfspace", res)
	checkMetrics(t, "halfspace", ix.WriteMetrics, len(qs))
}

func TestTraceInvariantCircular(t *testing.T) {
	g := wrand.New(208)
	const n, d = 300, 2
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{Coords: []float64{g.NormFloat64() * 10, g.NormFloat64() * 10}, Weight: ws[i], Data: i}
	}
	ix, err := NewCircularIndex(items, d, traceOpts(Expected)...)
	if err != nil {
		t.Fatal(err)
	}
	qs := make([]BallQuery, 16)
	for i := range qs {
		qs[i] = BallQuery{
			Center: []float64{g.NormFloat64() * 10, g.NormFloat64() * 10},
			Radius: 3 + g.Float64()*12,
		}
	}
	res := ix.QueryBatch(qs, 5, 8)
	checkTraces(t, "circular", res)
	checkMetrics(t, "circular", ix.WriteMetrics, len(qs))
}

func TestTracingOffNoTraces(t *testing.T) {
	g := wrand.New(209)
	items := genIntervalItems(g, 200)
	ix, err := NewIntervalIndex(items, WithReduction(Expected), WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range ix.QueryBatch([]float64{10, 50, 90}, 5, 2) {
		if r.Trace != nil {
			t.Fatalf("query %d: trace present without WithTracing: %+v", i, r.Trace)
		}
	}
	var b strings.Builder
	if err := ix.WriteMetrics(&b); err == nil {
		t.Fatal("WriteMetrics succeeded without WithMetrics")
	}
}

func TestSingleQueryMetricsAndSlowLog(t *testing.T) {
	g := wrand.New(210)
	items := genIntervalItems(g, 400)
	var slow strings.Builder
	ix, err := NewIntervalIndex(items,
		WithReduction(Expected), WithSeed(5),
		WithTracing(), WithMetrics(), WithSlowQueryLog(&slow, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Direct (shared-path) queries must count into the registry too.
	for i := 0; i < 10; i++ {
		ix.TopK(g.Float64()*120, 5)
	}
	var b strings.Builder
	if err := ix.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `topk_queries_total{index="interval"} 10`) {
		t.Fatalf("direct queries not counted:\n%s", out)
	}
	// Threshold 1 I/O: the cold-cache batch path must log slow entries
	// with their full trace.
	ix.QueryBatch([]float64{10, 50, 90}, 5, 2)
	logged := slow.String()
	if !strings.Contains(logged, "slow query index=interval") {
		t.Fatalf("no slow-query entries logged:\n%q", logged)
	}
	if !strings.Contains(logged, "t2.") && !strings.Contains(logged, "em.unattributed") {
		t.Fatalf("slow-query entry carries no trace:\n%q", logged)
	}
	b.Reset()
	if err := ix.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "topk_slow_queries_total") {
		t.Fatal("slow query counter missing from metrics")
	}
}

func TestQueryStatsHitRate(t *testing.T) {
	s := QueryStats{Reads: 3, Writes: 2, Hits: 7}
	if got := s.IOs(); got != 5 {
		t.Fatalf("IOs = %d, want 5 (hits must be excluded)", got)
	}
	if got, want := s.HitRate(), 0.7; got != want {
		t.Fatalf("HitRate = %v, want %v", got, want)
	}
	if got := (QueryStats{}).HitRate(); got != 0 {
		t.Fatalf("empty HitRate = %v, want 0", got)
	}
}
