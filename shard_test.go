package topk

import (
	"fmt"
	"strings"
	"testing"

	"topk/internal/shard"
	"topk/internal/wrand"
)

func shardIntervals(n int, seed uint64) []IntervalItem[int] {
	g := wrand.New(seed)
	ws := g.UniqueFloats(n, 1e6)
	items := make([]IntervalItem[int], n)
	for i := range items {
		lo := g.Float64() * 100
		items[i] = IntervalItem[int]{Lo: lo, Hi: lo + g.ExpFloat64()*5, Weight: ws[i], Data: i}
	}
	return items
}

func TestShardedConstructorErrors(t *testing.T) {
	items := shardIntervals(10, 1)
	if _, err := NewShardedIntervalIndex(items, 0); err == nil {
		t.Fatal("accepted 0 shards")
	}
	dup := append(append([]IntervalItem[int]{}, items...), items[3])
	if _, err := NewShardedIntervalIndex(dup, 4); err == nil {
		t.Fatal("accepted a cross-shard duplicate weight")
	}
	bad := append(append([]IntervalItem[int]{}, items...), IntervalItem[int]{Lo: 2, Hi: 1, Weight: 0.5})
	if _, err := NewShardedIntervalIndex(bad, 4); err == nil {
		t.Fatal("accepted a malformed interval")
	}
}

// TestShardedPolicies pins down item placement: ShardByWeight puts every
// item where shard.Hash says, and ShardRoundRobin keeps shard sizes
// within one item of each other — at build time and across inserts.
func TestShardedPolicies(t *testing.T) {
	const n, shards = 100, 4
	items := shardIntervals(n, 2)

	byWeight, err := NewShardedIntervalIndex(items, shards)
	if err != nil {
		t.Fatal(err)
	}
	if byWeight.Policy() != ShardByWeight {
		t.Fatalf("default policy = %v", byWeight.Policy())
	}
	want := make([]int, shards)
	for _, it := range items {
		want[shard.Hash(it.Weight, shards)]++
	}
	for i, got := range byWeight.ShardLens() {
		if got != want[i] {
			t.Fatalf("ShardByWeight shard %d holds %d items, Hash says %d", i, got, want[i])
		}
	}

	rr, err := NewShardedIntervalIndex(items, shards, WithShardPolicy(ShardRoundRobin))
	if err != nil {
		t.Fatal(err)
	}
	if rr.Policy() != ShardRoundRobin {
		t.Fatalf("policy = %v", rr.Policy())
	}
	check := func(stage string) {
		lens := rr.ShardLens()
		lo, hi := lens[0], lens[0]
		for _, l := range lens {
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		if hi-lo > 1 {
			t.Fatalf("%s: round-robin shards unbalanced: %v", stage, lens)
		}
	}
	check("after build")
	g := wrand.New(77)
	for i := 0; i < 13; i++ {
		lo := g.Float64() * 100
		if err := rr.Insert(IntervalItem[int]{Lo: lo, Hi: lo + 1, Weight: 2e6 + float64(i)}); err != nil {
			t.Fatalf("Insert %d: %v", i, err)
		}
	}
	check("after inserts")
	if rr.Len() != n+13 {
		t.Fatalf("Len() = %d", rr.Len())
	}
}

// TestShardedDynamicMatchesSingle drives the same op sequence through a
// sharded index and an unsharded one and requires identical answers —
// the update-routing analogue of the conformance query sweep.
func TestShardedDynamicMatchesSingle(t *testing.T) {
	for _, policy := range []ShardPolicy{ShardByWeight, ShardRoundRobin} {
		t.Run(policy.String(), func(t *testing.T) {
			items := shardIntervals(60, 3)
			sharded, err := NewShardedIntervalIndex(items, 3, WithShardPolicy(policy))
			if err != nil {
				t.Fatal(err)
			}
			single, err := NewIntervalIndex(items)
			if err != nil {
				t.Fatal(err)
			}
			g := wrand.New(9)
			for step := 0; step < 120; step++ {
				switch g.IntN(3) {
				case 0:
					lo := g.Float64() * 100
					it := IntervalItem[int]{Lo: lo, Hi: lo + g.Float64()*10, Weight: 3e6 + g.Float64()*1e6}
					errA, errB := sharded.Insert(it), single.Insert(it)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("step %d: Insert diverged: %v vs %v", step, errA, errB)
					}
				case 1:
					all := single.Items()
					if len(all) == 0 {
						continue
					}
					w := all[g.IntN(len(all))].Weight
					okA, errA := sharded.Delete(w)
					okB, errB := single.Delete(w)
					if okA != okB || (errA == nil) != (errB == nil) {
						t.Fatalf("step %d: Delete(%v) diverged: (%v,%v) vs (%v,%v)", step, w, okA, errA, okB, errB)
					}
				default:
					x := g.Float64() * 100
					a := sharded.TopK(x, 7)
					b := single.TopK(x, 7)
					if len(a) != len(b) {
						t.Fatalf("step %d: TopK lengths %d vs %d", step, len(a), len(b))
					}
					for i := range a {
						if a[i].Weight != b[i].Weight {
							t.Fatalf("step %d item %d: %v vs %v", step, i, a[i].Weight, b[i].Weight)
						}
					}
				}
				if sharded.Len() != single.Len() {
					t.Fatalf("step %d: Len %d vs %d", step, sharded.Len(), single.Len())
				}
			}
		})
	}
}

// TestShardedMetricsSharedRegistry checks the observability aggregation
// contract: all shards expose through one registry, every per-shard
// series carries a shard label, each metric family renders exactly one
// HELP/TYPE header, and the topk_shards gauge reports the width.
func TestShardedMetricsSharedRegistry(t *testing.T) {
	ix, err := NewShardedIntervalIndex(shardIntervals(80, 4), 3, WithMetrics())
	if err != nil {
		t.Fatal(err)
	}
	ix.TopK(50, 5)
	var b strings.Builder
	if err := ix.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	if !strings.Contains(text, `topk_shards{index="interval"} 3`) {
		t.Fatalf("missing topk_shards gauge:\n%s", text)
	}
	for sh := 0; sh < 3; sh++ {
		series := fmt.Sprintf(`topk_queries_total{index="interval",shard="%d"}`, sh)
		if !strings.Contains(text, series) {
			t.Fatalf("missing per-shard series %s:\n%s", series, text)
		}
	}
	for _, family := range []string{"topk_queries_total", "topk_query_ios", "topk_index_items"} {
		if got := strings.Count(text, "# HELP "+family+" "); got != 1 {
			t.Fatalf("%d HELP lines for %s, want 1", got, family)
		}
		if got := strings.Count(text, "# TYPE "+family+" "); got != 1 {
			t.Fatalf("%d TYPE lines for %s, want 1", got, family)
		}
	}

	plain, err := NewShardedIntervalIndex(shardIntervals(10, 5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.WriteMetrics(&b); err == nil {
		t.Fatal("WriteMetrics succeeded without WithMetrics")
	}
}

// TestShardedStatsAggregate checks that index-wide Stats are the
// element-wise sum of the per-shard counters and reset together.
func TestShardedStatsAggregate(t *testing.T) {
	ix, err := NewShardedIntervalIndex(shardIntervals(120, 6), 4, WithReduction(WorstCase))
	if err != nil {
		t.Fatal(err)
	}
	ix.ResetStats()
	ix.TopK(42, 9)
	sum := Stats{Reduction: WorstCase}
	for _, st := range ix.ShardStats() {
		sum.Reads += st.Reads
		sum.Writes += st.Writes
		sum.Hits += st.Hits
		sum.Blocks += st.Blocks
	}
	if got := ix.Stats(); got != sum {
		t.Fatalf("Stats() = %+v, shard sum %+v", got, sum)
	}
	if ix.Stats().IOs() == 0 {
		t.Fatal("query charged no I/Os")
	}
	ix.ResetStats()
	if st := ix.Stats(); st.Reads != 0 || st.Writes != 0 || st.Hits != 0 {
		t.Fatalf("counters after ResetStats: %+v", st)
	}
}

// TestShardedOrthoValidation checks that the dimension-checked wrappers
// keep their facade error contract behind sharding.
func TestShardedOrthoValidation(t *testing.T) {
	items := []PointItemN[int]{
		{Coords: []float64{1, 2}, Weight: 1},
		{Coords: []float64{3, 4}, Weight: 2},
		{Coords: []float64{5, 6}, Weight: 3},
	}
	ix, err := NewShardedOrthoIndex(items, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.Dim() != 2 {
		t.Fatalf("Dim() = %d", ix.Dim())
	}
	if _, err := ix.TopK([]float64{0}, []float64{9}, 2); err == nil {
		t.Fatal("accepted a 1D box on a 2D index")
	}
	if _, err := ix.TopK([]float64{9, 9}, []float64{0, 0}, 2); err == nil {
		t.Fatal("accepted an inverted box")
	}
	got, err := ix.TopK([]float64{0, 0}, []float64{10, 10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0].Weight != 3 {
		t.Fatalf("TopK = %+v", got)
	}
	if _, err := NewShardedOrthoIndex(items, 0, 2); err == nil {
		t.Fatal("accepted dimension 0")
	}
}

// TestShardedReportAboveEarlyStop checks that a visitor returning false
// stops the scan across shard boundaries.
func TestShardedReportAboveEarlyStop(t *testing.T) {
	ix, err := NewShardedIntervalIndex(shardIntervals(50, 8), 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	ix.ReportAbove(50, -1, func(IntervalItem[int]) bool {
		seen++
		return seen < 3
	})
	if seen > 3 {
		t.Fatalf("visited %d items after stopping at 3", seen)
	}
}
