// Benchmarks, one per experiment of DESIGN.md §5 (the paper has no tables
// or figures of its own; E1–E16 measure its theorems and lemmas). Each
// benchmark exercises the experiment's central operation and reports
// simulated I/Os per operation alongside wall-clock time. The full sweep
// tables are produced by cmd/topk-bench; EXPERIMENTS.md records both.
package topk

import (
	"math"
	"testing"

	"topk/internal/circular"
	"topk/internal/core"
	"topk/internal/enclosure"
	"topk/internal/halfspace"
	"topk/internal/interval"
	"topk/internal/wrand"
)

const benchSeed = 42

// reportIOs attaches the simulated I/O metric to a facade benchmark.
func reportIOs(b *testing.B, st Stats) {
	b.ReportMetric(float64(st.IOs())/float64(b.N), "ios/op")
}

// BenchmarkE01_Lemma1RankSampling measures one rank-sampling trial
// (Lemma 1): drawing a p-sample and checking both bullets.
func BenchmarkE01_Lemma1RankSampling(b *testing.B) {
	g := wrand.New(benchSeed)
	lp := core.Lemma1Params{N: 100000, K: 1000, P: 0.03, Delta: 0.1}
	fails := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !core.Lemma1Trial(g, lp) {
			fails++
		}
	}
	b.ReportMetric(float64(fails)/float64(b.N), "failrate")
}

// BenchmarkE02_Lemma3SampleMax measures one (1/K)-sample max trial
// (Lemma 3).
func BenchmarkE02_Lemma3SampleMax(b *testing.B) {
	g := wrand.New(benchSeed)
	succ := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if core.Lemma3Trial(g, 8192, 512) {
			succ++
		}
	}
	b.ReportMetric(float64(succ)/float64(b.N), "successrate")
}

// BenchmarkE03_CoreSetConstruction measures drawing one Lemma 2 core-set
// over 2^16 intervals.
func BenchmarkE03_CoreSetConstruction(b *testing.B) {
	g := wrand.New(benchSeed)
	items := genBenchIntervals(1 << 16)
	cp := core.CoreSetParams{N: len(items), K: 1024, Lambda: interval.Lambda}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.CoreSet(g, items, cp)
	}
}

func genBenchIntervals(n int) []core.Item[interval.Interval] {
	g := wrand.New(benchSeed)
	ws := g.UniqueFloats(n, 1e9)
	items := make([]core.Item[interval.Interval], n)
	for i := range items {
		lo := g.Float64() * 100
		items[i] = core.Item[interval.Interval]{
			Value:  interval.Interval{Lo: lo, Hi: lo + g.ExpFloat64()*15},
			Weight: ws[i],
		}
	}
	return items
}

func genFacadeIntervals(n int) []IntervalItem[int] {
	g := wrand.New(benchSeed)
	ws := g.UniqueFloats(n, 1e9)
	items := make([]IntervalItem[int], n)
	for i := range items {
		lo := g.Float64() * 100
		items[i] = IntervalItem[int]{Lo: lo, Hi: lo + g.ExpFloat64()*15, Weight: ws[i], Data: i}
	}
	return items
}

// benchIntervalTopK measures top-k interval queries under one reduction.
func benchIntervalTopK(b *testing.B, r Reduction, n, k int) {
	ix, err := NewIntervalIndex(genFacadeIntervals(n), WithReduction(r), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	qs := make([]float64, 64)
	g := wrand.New(benchSeed + 1)
	for i := range qs {
		qs[i] = g.Float64() * 100
	}
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK(qs[i%len(qs)], k)
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE04_Theorem1Query: worst-case reduction query cost (Thm 1).
func BenchmarkE04_Theorem1Query(b *testing.B) {
	benchIntervalTopK(b, WorstCase, 1<<16, 16)
}

// BenchmarkE05_Theorem2Query: expected reduction query cost (Thm 2).
func BenchmarkE05_Theorem2Query(b *testing.B) {
	benchIntervalTopK(b, Expected, 1<<16, 16)
}

// BenchmarkE06_FaceOff compares all four reductions on the same workload
// and k sweep (the E6 table's axes, as sub-benchmarks).
func BenchmarkE06_FaceOff(b *testing.B) {
	for _, r := range []Reduction{BinarySearch, WorstCase, Expected, FullScan} {
		for _, k := range []int{1, 64, 1024} {
			r, k := r, k
			b.Run(r.String()+"/k="+itoa(k), func(b *testing.B) {
				benchIntervalTopK(b, r, 1<<15, k)
			})
		}
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// BenchmarkE07_IntervalUpdate: Theorem 4's dynamic path — alternating
// insert/delete on the Expected-reduction interval index.
func BenchmarkE07_IntervalUpdate(b *testing.B) {
	ix, err := NewIntervalIndex(genFacadeIntervals(1<<14), WithReduction(Expected), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	g := wrand.New(benchSeed + 2)
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := 2e9 + float64(i)
		lo := g.Float64() * 100
		if err := ix.Insert(IntervalItem[int]{Lo: lo, Hi: lo + 5, Weight: w}); err != nil {
			b.Fatal(err)
		}
		if _, err := ix.Delete(w); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE08_EnclosureQuery: Theorem 5 on the dating workload.
func BenchmarkE08_EnclosureQuery(b *testing.B) {
	g := wrand.New(benchSeed)
	const n = 1 << 14
	ws := g.UniqueFloats(n, 1e9)
	items := make([]RectItem[int], n)
	for i := range items {
		x1, y1 := 18+g.Float64()*40, 140+g.Float64()*50
		items[i] = RectItem[int]{
			X1: x1, X2: x1 + 2 + g.ExpFloat64()*10,
			Y1: y1, Y2: y1 + 2 + g.ExpFloat64()*20,
			Weight: ws[i],
		}
	}
	ix, err := NewEnclosureIndex(items, WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK(18+float64(i%45), 140+float64(i%60), 10)
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE09_DominanceQuery: Theorem 6 on the hotel workload.
func BenchmarkE09_DominanceQuery(b *testing.B) {
	g := wrand.New(benchSeed)
	const n = 1 << 13
	ws := g.UniqueFloats(n, 1e9)
	items := make([]DominanceItem[int], n)
	for i := range items {
		items[i] = DominanceItem[int]{
			X: 40 + g.ExpFloat64()*120, Y: g.ExpFloat64() * 8, Z: g.Float64() * 10,
			Weight: ws[i],
		}
	}
	ix, err := NewDominanceIndex(items, WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK(80+float64(i%300), 2+float64(i%12), 2+float64(i%8), 10)
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE10_HalfplaneQuery: Theorem 3, d = 2.
func BenchmarkE10_HalfplaneQuery(b *testing.B) {
	g := wrand.New(benchSeed)
	const n = 1 << 13
	ws := g.UniqueFloats(n, 1e9)
	items := make([]PointItem2[int], n)
	for i := range items {
		items[i] = PointItem2[int]{X: g.NormFloat64() * 10, Y: g.NormFloat64() * 10, Weight: ws[i]}
	}
	ix, err := NewHalfplaneIndex(items, WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	qs := make([][3]float64, 32)
	for i := range qs {
		th := g.Float64() * 2 * math.Pi
		qs[i] = [3]float64{math.Cos(th), math.Sin(th), g.NormFloat64() * 8}
	}
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qs[i%len(qs)]
		ix.TopK(q[0], q[1], q[2], 10)
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE11_Halfspace4D: Theorem 3, d ≥ 4 (worst-case reduction over
// the kd-tree black box).
func BenchmarkE11_Halfspace4D(b *testing.B) {
	g := wrand.New(benchSeed)
	const n, d = 1 << 13, 4
	ws := g.UniqueFloats(n, 1e9)
	items := make([]PointItemN[int], n)
	for i := range items {
		c := make([]float64, d)
		for j := range c {
			c[j] = g.NormFloat64() * 10
		}
		items[i] = PointItemN[int]{Coords: c, Weight: ws[i]}
	}
	ix, err := NewHalfspaceIndex(items, d, WithReduction(WorstCase), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	normal := []float64{0.5, -0.5, 0.5, 0.5}
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK(normal, float64(i%20)-10, 16)
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE12_CircularQuery: Corollary 1 (lifting).
func BenchmarkE12_CircularQuery(b *testing.B) {
	g := wrand.New(benchSeed)
	const n, d = 1 << 13, 2
	ws := g.UniqueFloats(n, 1e9)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{Coords: []float64{g.NormFloat64() * 10, g.NormFloat64() * 10}, Weight: ws[i]}
	}
	ix, err := NewCircularIndex(items, d, WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK([]float64{float64(i%9) - 4, float64(i%7) - 3}, 8, 10)
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE13_DynamicInsert: Theorem 2 insertion (the O(1)-copies path).
func BenchmarkE13_DynamicInsert(b *testing.B) {
	ix, err := NewIntervalIndex(genFacadeIntervals(1<<14), WithReduction(Expected), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	g := wrand.New(benchSeed + 3)
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := g.Float64() * 100
		if err := ix.Insert(IntervalItem[int]{Lo: lo, Hi: lo + 5, Weight: 3e9 + float64(i)}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE14_ExpectedBuild: Theorem 2 construction (prioritized + the
// geometric sample ladder of max structures).
func BenchmarkE14_ExpectedBuild(b *testing.B) {
	items := genFacadeIntervals(1 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewIntervalIndex(items, WithReduction(Expected), WithSeed(benchSeed)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE15_WorstCaseBuild: Theorem 1 construction (nested core-sets
// plus the large-k ladder).
func BenchmarkE15_WorstCaseBuild(b *testing.B) {
	items := genFacadeIntervals(1 << 14)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := NewIntervalIndex(items, WithReduction(WorstCase), WithSeed(benchSeed)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE16_RoundAlgorithm isolates the Theorem 2 round algorithm on a
// large-k query, reporting the observed mean rounds.
func BenchmarkE16_RoundAlgorithm(b *testing.B) {
	items := genBenchIntervals(1 << 15)
	exp, err := core.NewExpected(items, interval.Match[interval.Interval],
		interval.NewPrioritizedFactory[interval.Interval](nil),
		interval.NewMaxFactory[interval.Interval](nil),
		core.ExpectedOptions{B: 64, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	g := wrand.New(benchSeed + 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.TopK(g.Float64()*100, 512)
	}
	b.StopTimer()
	st := exp.Stats()
	if st.Queries > 0 {
		b.ReportMetric(float64(st.Rounds)/float64(st.Queries), "rounds/op")
	}
}

// BenchmarkE17_WarmCacheQuery measures a repeated query against a warm EM
// cache (the Aggarwal–Vitter memory makes block reuse free).
func BenchmarkE17_WarmCacheQuery(b *testing.B) {
	ix, err := NewIntervalIndex(genFacadeIntervals(1<<15), WithMemBlocks(512), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	ix.TopK(42, 16) // warm the cache
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.TopK(42, 16)
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE18_RangeTopK: the 1D top-k range-reporting extension (the
// survey's headline problem) through the public API.
func BenchmarkE18_RangeTopK(b *testing.B) {
	g := wrand.New(benchSeed)
	const n = 1 << 15
	ws := g.UniqueFloats(n, 1e9)
	items := make([]PointItem1[int], n)
	for i := range items {
		items[i] = PointItem1[int]{Pos: g.Float64() * 100, Weight: ws[i]}
	}
	ix, err := NewRangeIndex(items, WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	ix.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := float64(i % 80)
		ix.TopK(lo, lo+20, 10)
	}
	b.StopTimer()
	reportIOs(b, ix.Stats())
}

// BenchmarkE19_CascadedStabbingMax: fractional-cascading ablation — the
// cascaded 2D stabbing-max query (compare with BenchmarkE19_PlainStabbingMax).
func BenchmarkE19_CascadedStabbingMax(b *testing.B) {
	benchEnclosureMax(b, true)
}

// BenchmarkE19_PlainStabbingMax is the uncascaded counterpart.
func BenchmarkE19_PlainStabbingMax(b *testing.B) {
	benchEnclosureMax(b, false)
}

func benchEnclosureMax(b *testing.B, cascade bool) {
	g := wrand.New(benchSeed)
	const n = 1 << 14
	ws := g.UniqueFloats(n, 1e9)
	items := make([]core.Item[enclosure.Rect], n)
	for i := range items {
		x1, y1 := 18+g.Float64()*40, 140+g.Float64()*50
		items[i] = core.Item[enclosure.Rect]{
			Value:  enclosure.Rect{X1: x1, X2: x1 + 2 + g.ExpFloat64()*10, Y1: y1, Y2: y1 + 2 + g.ExpFloat64()*20},
			Weight: ws[i],
		}
	}
	var m core.Max[enclosure.Pt2, enclosure.Rect]
	var err error
	if cascade {
		m, err = enclosure.NewMaxCascade(items, nil)
	} else {
		m, err = enclosure.NewMax(items, nil)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.MaxItem(enclosure.Pt2{X: 18 + float64(i%45), Y: 140 + float64(i%60)})
	}
}

// BenchmarkE20_SigmaLadder: Theorem 2 queries at the paper's σ = 1/20
// (the σ sweep itself lives in cmd/topk-bench -exp E20).
func BenchmarkE20_SigmaLadder(b *testing.B) {
	items := genBenchIntervals(1 << 14)
	exp, err := core.NewExpected(items, interval.Match[interval.Interval],
		interval.NewPrioritizedFactory[interval.Interval](nil),
		interval.NewMaxFactory[interval.Interval](nil),
		core.ExpectedOptions{B: 64, Sigma: core.DefaultSigma, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	g := wrand.New(benchSeed + 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		exp.TopK(g.Float64()*100, 64)
	}
}

// BenchmarkE21_SmallF: Theorem 1 queries at the E21-preferred FScale.
func BenchmarkE21_SmallF(b *testing.B) {
	items := genBenchIntervals(1 << 14)
	wc, err := core.NewWorstCase(items, interval.Match[interval.Interval],
		interval.NewPrioritizedFactory[interval.Interval](nil),
		core.WorstCaseOptions{B: 64, Lambda: interval.Lambda, FScale: 0.1, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	g := wrand.New(benchSeed + 21)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		wc.TopK(g.Float64()*100, 16)
	}
}

// BenchmarkE22_DirectBall vs BenchmarkE22_LiftedBall: Corollary 1 ablation.
func BenchmarkE22_LiftedBall(b *testing.B) { benchBall(b, true) }

// BenchmarkE22_DirectBall is the unlifted counterpart.
func BenchmarkE22_DirectBall(b *testing.B) { benchBall(b, false) }

func benchBall(b *testing.B, lifted bool) {
	g := wrand.New(benchSeed)
	const n, d = 1 << 14, 2
	ws := g.UniqueFloats(n, 1e9)
	pts := make([][]float64, n)
	for i := range pts {
		pts[i] = []float64{g.NormFloat64() * 10, g.NormFloat64() * 10}
	}
	var pri core.Prioritized[circular.Ball, halfspace.PtN]
	var err error
	if lifted {
		pri, err = circular.NewIndex(pts, ws, d, nil)
	} else {
		pri, err = circular.NewDirectIndex(pts, ws, d, nil)
	}
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ball := circular.Ball{Center: []float64{float64(i%9 - 4), float64(i%7 - 3)}, R: 1.5}
		pri.ReportAbove(ball, math.Inf(-1), func(core.Item[halfspace.PtN]) bool { return true })
	}
}

// BenchmarkE23_PrioritizedFromTopK: the §1.2 reverse reduction answering a
// prioritized query through a top-k structure with doubling.
func BenchmarkE23_PrioritizedFromTopK(b *testing.B) {
	items := genBenchIntervals(1 << 14)
	exp, err := core.NewExpected(items, interval.Match[interval.Interval],
		interval.NewPrioritizedFactory[interval.Interval](nil),
		interval.NewMaxFactory[interval.Interval](nil),
		core.ExpectedOptions{B: 64, Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	adapted := core.NewPrioritizedFromTopK[float64, interval.Interval](exp, 64)
	g := wrand.New(benchSeed + 23)
	sorted := append([]core.Item[interval.Interval](nil), items...)
	core.SortByWeightDesc(sorted)
	tau := sorted[len(sorted)/100].Weight // ~top-1% threshold
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		adapted.ReportAbove(g.Float64()*100, tau, func(core.Item[interval.Interval]) bool { return true })
	}
}

// BenchmarkE25_OverlayInsert: one insert through the logarithmic-method
// dynamization overlay (WithUpdates), amortized over tail flushes and
// level merges.
func BenchmarkE25_OverlayInsert(b *testing.B) {
	g := wrand.New(benchSeed + 25)
	items := make([]IntervalItem[int], 1<<13)
	for i := range items {
		lo := g.Float64() * 100
		items[i] = IntervalItem[int]{Lo: lo, Hi: lo + g.ExpFloat64()*10, Weight: float64(i + 1)}
	}
	ix, err := NewIntervalIndex(items, WithReduction(WorstCase), WithUpdates(), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	ix.ResetStats()
	w := float64(len(items))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := g.Float64() * 100
		w++
		if err := ix.Insert(IntervalItem[int]{Lo: lo, Hi: lo + g.ExpFloat64()*10, Weight: w}); err != nil {
			b.Fatal(err)
		}
	}
	reportIOs(b, ix.Stats())
}
