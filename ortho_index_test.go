package topk

import (
	"sort"
	"testing"

	"topk/internal/wrand"
)

func TestOrthoIndexAllReductions(t *testing.T) {
	g := wrand.New(41)
	const n, d = 1200, 2
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{
			Coords: []float64{g.Float64() * 100, g.Float64() * 100},
			Weight: ws[i], Data: i,
		}
	}
	oracle := func(lo, hi []float64, k int) []float64 {
		var out []float64
		for _, it := range items {
			in := true
			for j := range lo {
				if it.Coords[j] < lo[j] || it.Coords[j] > hi[j] {
					in = false
					break
				}
			}
			if in {
				out = append(out, it.Weight)
			}
		}
		sort.Sort(sort.Reverse(sort.Float64Slice(out)))
		if k < len(out) {
			out = out[:k]
		}
		return out
	}
	for _, r := range allReductions {
		ix, err := NewOrthoIndex(items, d, WithReduction(r), WithSeed(9))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if ix.Dim() != d || ix.Len() != n {
			t.Fatalf("%v: Dim=%d Len=%d", r, ix.Dim(), ix.Len())
		}
		for trial := 0; trial < 25; trial++ {
			lo := []float64{g.Float64() * 80, g.Float64() * 80}
			hi := []float64{lo[0] + g.Float64()*40, lo[1] + g.Float64()*40}
			for _, k := range []int{1, 10, 300} {
				got, err := ix.TopK(lo, hi, k)
				if err != nil {
					t.Fatalf("%v: %v", r, err)
				}
				want := oracle(lo, hi, k)
				if len(got) != len(want) {
					t.Fatalf("%v: %d results, want %d", r, len(got), len(want))
				}
				for i := range got {
					if got[i].Weight != want[i] {
						t.Fatalf("%v: result %d = %v, want %v", r, i, got[i].Weight, want[i])
					}
				}
			}
		}
	}
}

func TestOrthoIndexDirectQueriesAndErrors(t *testing.T) {
	g := wrand.New(42)
	const n, d = 300, 3
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItemN[int], n)
	for i := range items {
		items[i] = PointItemN[int]{
			Coords: []float64{g.Float64() * 10, g.Float64() * 10, g.Float64() * 10},
			Weight: ws[i],
		}
	}
	ix, err := NewOrthoIndex(items, d)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := []float64{0, 0, 0}, []float64{10, 10, 10}
	if m, ok, err := ix.Max(lo, hi); err != nil || !ok || m.Weight <= 0 {
		t.Fatalf("Max over everything = (%+v, %v, %v)", m, ok, err)
	}
	count := 0
	if err := ix.ReportAbove(lo, hi, 0, func(PointItemN[int]) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("ReportAbove saw %d of %d", count, n)
	}
	if _, err := ix.TopK([]float64{5, 5, 5}, []float64{1, 1, 1}, 3); err == nil {
		t.Error("reversed box accepted")
	}
	if _, err := ix.TopK([]float64{1, 1}, []float64{2, 2}, 3); err == nil {
		t.Error("dimension-mismatched box accepted")
	}
	if _, err := NewOrthoIndex(items, 2); err == nil {
		t.Error("dimension mismatch at build accepted")
	}
}
