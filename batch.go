package topk

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"topk/internal/em"
)

// This file implements the concurrent batch-query API shared by every
// index. An index is split into an immutable structure (blocks, core-sets,
// samples — everything built at construction time) and per-query mutable
// state: each query in a batch runs inside its own em.Tracker query view,
// a private cold LRU cache plus private counters, so any number of
// read-only queries can execute in parallel without corrupting the I/O
// accounting that validates the paper's Theorem 1/2 bounds. On completion
// each view's counters are merged into the index-wide Stats atomically.
//
// Because every view starts from a cold cache, a query's I/O cost is a
// deterministic function of the query alone: QueryBatch reports the same
// per-query Stats whether parallelism is 1 or 64. Batches must not run
// concurrently with Insert or Delete on the same index.

// QueryStats are the simulated I/O counters of a single query, measured
// from a cold private cache (the paper's worst-case accounting).
//
// Hits are block touches absorbed by the cache; they are free in the EM
// model and therefore excluded from IOs(). The invariant is
// IOs() == Reads + Writes, always — never Reads + Writes + Hits.
type QueryStats struct {
	Reads  int64 // block reads that missed the query's private cache
	Writes int64 // block writes
	Hits   int64 // touches served by the query's private cache (free)
}

// IOs returns Reads + Writes, the EM model's cost metric. Hits are not
// included: a cache hit costs nothing under the model.
func (s QueryStats) IOs() int64 { return s.Reads + s.Writes }

// HitRate returns the fraction of block touches served by the cache,
// Hits / (Hits + Reads), or 0 when the query touched no blocks. Writes
// are excluded: every write is charged regardless of residency.
func (s QueryStats) HitRate() float64 {
	total := s.Hits + s.Reads
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// BatchResult pairs one query's answer with that query's own I/O cost.
// Trace is the query's phase-span trace, populated only on indexes built
// with WithTracing; its depth-0 spans partition Stats exactly (the sum of
// their Reads/Writes/Hits equals the query's — the residual, if any,
// appears as an "em.unattributed" event).
type BatchResult[R any] struct {
	Items []R
	Stats QueryStats
	Trace []TraceEvent

	// Outcome and Err report the query's request-lifecycle ending when it
	// ran under a QueryCtx (QueryBatchCtx). Plain QueryBatch always
	// leaves the zero values: OutcomeOK, nil. When a limit fired, Err
	// wraps ErrBudgetExceeded or ErrDeadlineExceeded and Items is either
	// empty or — with QueryCtx.DegradeToMax — the documented top-1
	// fallback prefix (Outcome == OutcomeDegraded). Stats always covers
	// the work actually charged before the abort.
	Outcome Outcome
	Err     error
}

// Span is a 1D query range [Lo, Hi] for RangeIndex.QueryBatch.
type Span struct {
	Lo, Hi float64
}

// BoxQuery is an axis-aligned box [Lo, Hi] for OrthoIndex.QueryBatch.
type BoxQuery struct {
	Lo, Hi []float64
}

// BallQuery is a center/radius ball for CircularIndex.QueryBatch.
type BallQuery struct {
	Center []float64
	Radius float64
}

// CornerQuery is a dominance corner (X, Y, Z) for
// DominanceIndex.QueryBatch.
type CornerQuery struct {
	X, Y, Z float64
}

// PointQuery is a 2D point for EnclosureIndex.QueryBatch.
type PointQuery struct {
	X, Y float64
}

// HalfplaneQuery is the halfplane {(x, y) : A·x + B·y ≥ C} for
// HalfplaneIndex.QueryBatch.
type HalfplaneQuery struct {
	A, B, C float64
}

// HalfspaceQuery is the halfspace {x : A·x ≥ C} for
// HalfspaceIndex.QueryBatch.
type HalfspaceQuery struct {
	A []float64
	C float64
}

// batchSpec carries the per-batch execution hooks through runBatch: the
// query function, the request-lifecycle limits, and the unlimited Max
// fallback used by the degradation ladder (nil when the caller has no
// top-1 path).
type batchSpec[Q, R any] struct {
	ctx QueryCtx
	k   int
	one func(Q) []R
	max func(Q) []R // shared-path top-1 fallback; must not require a view
}

// runBatch answers qs[i] via spec.one(qs[i]) on a bounded pool of
// `parallelism` worker goroutines, wrapping each call in an em.Tracker
// query view so the result carries that query's own cold-cache I/O stats.
// parallelism <= 0 means GOMAXPROCS. Results are positionally aligned
// with qs.
//
// When spec.ctx is limited, the view is armed with the I/O budget and
// deadline before the query runs; a charge path that trips a limit
// panics with *em.AbortError, which is recovered here at the query
// boundary and mapped onto the result's Outcome/Err (plus the Max
// fallback when requested). The view's partial counters stay exact.
//
// Any other panic inside spec.one(q) does not wedge the pool: the
// panicking worker ends its view, the remaining workers drain, and the
// first panic value is re-raised on the calling goroutine once all
// workers have exited. Workers stop claiming new queries after a panic,
// so later results may be zero.
func runBatch[Q, R any](tr *em.Tracker, ob *indexObs, qs []Q, parallelism int, spec batchSpec[Q, R]) []BatchResult[R] {
	if len(qs) == 0 {
		return nil
	}
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > len(qs) {
		parallelism = len(qs)
	}
	limited := spec.ctx.limited()
	out := make([]BatchResult[R], len(qs))
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		aborted  atomic.Bool
		panicked atomic.Pointer[any]
	)
	runOne := func(i int) {
		var t0 time.Time
		if ob != nil {
			t0 = time.Now()
		}
		v := tr.BeginQuery()
		if limited {
			v.SetLimits(spec.ctx.IOBudget, spec.ctx.Deadline)
		}
		done := false
		defer func() {
			if !done {
				// spec.one(qs[i]) panicked: release the view so the
				// tracker's goroutine routing table doesn't leak, record
				// the first panic, and stop the pool from claiming
				// further queries.
				v.End()
				if r := recover(); r != nil {
					aborted.Store(true)
					panicked.CompareAndSwap(nil, &r)
				}
			}
		}()
		items, abort := runLimited(spec.one, qs[i])
		st := v.End()
		out[i] = BatchResult[R]{
			Items: items,
			Stats: QueryStats{Reads: st.Reads, Writes: st.Writes, Hits: st.Hits},
		}
		if abort != nil {
			res := &out[i]
			res.Items = nil
			switch abort.Reason {
			case em.AbortBudget:
				res.Outcome = OutcomeBudgetExceeded
				res.Err = fmt.Errorf("%w (charged %d of %d I/Os)",
					ErrBudgetExceeded, abort.IOs, abort.Budget)
			default:
				res.Outcome = OutcomeDeadlineExceeded
				res.Err = fmt.Errorf("%w (aborted after %d I/Os)",
					ErrDeadlineExceeded, abort.IOs)
			}
			if spec.ctx.DegradeToMax && spec.max != nil {
				// The ladder's last rung: serve the top-1, the provably
				// correct prefix of the true top-k. It runs unlimited on
				// the shared path — Max is the cheapest query the paper
				// defines — so its cost lands in index-wide Stats.
				res.Items = spec.max(qs[i])
				res.Outcome = OutcomeDegraded
			}
		}
		if ob != nil {
			trace := v.Trace()
			if ob.wantTrace() {
				out[i].Trace = toPublicTrace(trace)
			}
			ob.observeBatch(time.Since(t0), st, trace, batchLifecycle{
				ctx: spec.ctx, k: spec.k, outcome: out[i].Outcome, abort: abort,
			}, func() string { return fmt.Sprintf("%+v", qs[i]) })
		}
		done = true
	}
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !aborted.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(qs) {
					return
				}
				runOne(i)
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
	return out
}

// runLimited executes one query and converts an *em.AbortError panic —
// the budget/deadline sentinel raised by the view's charge paths — into
// a return value. Every other panic keeps unwinding into runBatch's
// pool-abort handling.
func runLimited[Q, R any](one func(Q) []R, q Q) (items []R, abort *em.AbortError) {
	defer func() {
		if r := recover(); r != nil {
			if ae, ok := r.(*em.AbortError); ok {
				items, abort = nil, ae
				return
			}
			panic(r)
		}
	}()
	return one(q), nil
}
