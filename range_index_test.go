package topk

import (
	"sort"
	"testing"

	"topk/internal/wrand"
)

func genRangeItems(g *wrand.RNG, n int) []PointItem1[int] {
	ws := g.UniqueFloats(n, 1e6)
	items := make([]PointItem1[int], n)
	for i := range items {
		items[i] = PointItem1[int]{Pos: g.Float64() * 100, Weight: ws[i], Data: i}
	}
	return items
}

func rangeOracle(items []PointItem1[int], lo, hi float64, k int) []float64 {
	var ws []float64
	for _, it := range items {
		if it.Pos >= lo && it.Pos <= hi {
			ws = append(ws, it.Weight)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))
	if k < len(ws) {
		ws = ws[:k]
	}
	return ws
}

func TestRangeIndexAllReductions(t *testing.T) {
	g := wrand.New(31)
	items := genRangeItems(g, 2500)
	for _, r := range allReductions {
		ix, err := NewRangeIndex(items, WithReduction(r), WithSeed(5))
		if err != nil {
			t.Fatalf("%v: %v", r, err)
		}
		if ix.Len() != len(items) {
			t.Fatalf("%v: Len=%d", r, ix.Len())
		}
		for trial := 0; trial < 30; trial++ {
			lo := g.Float64() * 100
			hi := lo + g.Float64()*35
			for _, k := range []int{1, 8, 200, 4000} {
				got := ix.TopK(lo, hi, k)
				want := rangeOracle(items, lo, hi, k)
				if len(got) != len(want) {
					t.Fatalf("%v [%v,%v] k=%d: %d results, want %d", r, lo, hi, k, len(got), len(want))
				}
				for i := range got {
					if got[i].Weight != want[i] {
						t.Fatalf("%v: result %d = %v, want %v", r, i, got[i].Weight, want[i])
					}
				}
			}
		}
	}
}

func TestRangeIndexCountMaxReport(t *testing.T) {
	g := wrand.New(32)
	items := genRangeItems(g, 900)
	ix, err := NewRangeIndex(items)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := 25.0, 60.0
	want := rangeOracle(items, lo, hi, len(items))
	if got := ix.Count(lo, hi); got != len(want) {
		t.Fatalf("Count = %d, want %d", got, len(want))
	}
	if m, ok := ix.Max(lo, hi); len(want) > 0 && (!ok || m.Weight != want[0]) {
		t.Fatalf("Max = (%v,%v), want %v", m.Weight, ok, want[0])
	}
	seen := 0
	ix.ReportAbove(lo, hi, 0, func(PointItem1[int]) bool { seen++; return true })
	if seen != len(want) {
		t.Fatalf("ReportAbove saw %d, want %d", seen, len(want))
	}
}

func TestRangeIndexDynamic(t *testing.T) {
	g := wrand.New(33)
	items := genRangeItems(g, 800)
	ix, err := NewRangeIndex(items, WithReduction(Expected))
	if err != nil {
		t.Fatal(err)
	}
	live := append([]PointItem1[int](nil), items...)
	for round := 0; round < 4; round++ {
		for i := 0; i < 80; i++ {
			it := PointItem1[int]{Pos: g.Float64() * 100, Weight: 2e6 + g.Float64()*1e6}
			if err := ix.Insert(it); err != nil {
				continue
			}
			live = append(live, it)
		}
		for i := 0; i < 60; i++ {
			v := g.IntN(len(live))
			ok, err := ix.Delete(live[v].Weight)
			if !ok || err != nil {
				t.Fatalf("Delete: %v %v", ok, err)
			}
			live[v] = live[len(live)-1]
			live = live[:len(live)-1]
		}
		lo := g.Float64() * 80
		got := ix.TopK(lo, lo+25, 15)
		want := rangeOracle(live, lo, lo+25, 15)
		if len(got) != len(want) {
			t.Fatalf("round %d: %d results, want %d", round, len(got), len(want))
		}
		for i := range got {
			if got[i].Weight != want[i] {
				t.Fatalf("round %d item %d: %v, want %v", round, i, got[i].Weight, want[i])
			}
		}
	}
	if ix.Len() != len(live) {
		t.Fatalf("Len = %d, want %d", ix.Len(), len(live))
	}
}

func TestRangeIndexValidation(t *testing.T) {
	dup := []PointItem1[int]{{Pos: 1, Weight: 5}, {Pos: 2, Weight: 5}}
	if _, err := NewRangeIndex(dup); err == nil {
		t.Fatal("duplicate weights accepted")
	}
	ix, _ := NewRangeIndex([]PointItem1[int]{{Pos: 1, Weight: 1}}, WithReduction(WorstCase))
	if err := ix.Insert(PointItem1[int]{Pos: 2, Weight: 2}); err == nil {
		t.Fatal("static index accepted Insert")
	}
}

func TestItemsSnapshotRoundTrip(t *testing.T) {
	g := wrand.New(34)
	items := genRangeItems(g, 300)
	ix, err := NewRangeIndex(items)
	if err != nil {
		t.Fatal(err)
	}
	_ = ix.Insert(PointItem1[int]{Pos: 50, Weight: 9e6, Data: 777})
	_, _ = ix.Delete(items[0].Weight)

	snap := ix.Items()
	if len(snap) != ix.Len() {
		t.Fatalf("snapshot has %d items, index %d", len(snap), ix.Len())
	}
	// Rebuild from the snapshot: queries must agree.
	rebuilt, err := NewRangeIndex(snap)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		lo := g.Float64() * 90
		a := ix.TopK(lo, lo+20, 10)
		b := rebuilt.TopK(lo, lo+20, 10)
		if len(a) != len(b) {
			t.Fatalf("rebuilt disagrees: %d vs %d results", len(a), len(b))
		}
		for i := range a {
			if a[i].Weight != b[i].Weight || a[i].Data != b[i].Data {
				t.Fatalf("rebuilt item %d differs: %+v vs %+v", i, a[i], b[i])
			}
		}
	}
}
