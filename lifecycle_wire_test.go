package topk_test

import (
	"testing"

	"topk"
)

// The cluster tier ships outcomes between processes as their String()
// forms and parses them back on the coordinator to re-apply the
// single-process merge rules, so String/ParseOutcome must round-trip
// every value exactly — a new Outcome that misses the parser would
// silently merge as OK across the wire.
func TestOutcomeWireRoundTrip(t *testing.T) {
	outcomes := []topk.Outcome{
		topk.OutcomeOK,
		topk.OutcomeDegraded,
		topk.OutcomeBudgetExceeded,
		topk.OutcomeDeadlineExceeded,
		topk.OutcomeUnavailable,
	}
	seen := map[string]bool{}
	for _, o := range outcomes {
		s := o.String()
		if s == "" || s == "unknown" {
			t.Fatalf("outcome %d has no wire form: %q", o, s)
		}
		if seen[s] {
			t.Fatalf("outcome %d reuses wire form %q", o, s)
		}
		seen[s] = true
		back, ok := topk.ParseOutcome(s)
		if !ok || back != o {
			t.Fatalf("ParseOutcome(%q) = %v, %v; want %v, true", s, back, ok, o)
		}
	}
	if _, ok := topk.ParseOutcome("unknown"); ok {
		t.Fatal(`ParseOutcome("unknown") accepted the fallback string`)
	}
	if _, ok := topk.ParseOutcome("definitely-not-an-outcome"); ok {
		t.Fatal("ParseOutcome accepted garbage")
	}
}
