// Parallel batch-query benchmarks (the E24 experiment). Each one answers a
// fixed query set through QueryBatch at several worker counts, reporting
// wall-clock queries/sec and the summed per-query I/Os — which must not
// move with the worker count, since every query runs against its own cold
// private cache. The full sweep table is produced by cmd/topk-bench -exp
// E24; EXPERIMENTS.md records it.
package topk

import (
	"math"
	"testing"

	"topk/internal/wrand"
)

var parallelWorkerCounts = []int{1, 2, 4, 8}

// benchBatch runs one QueryBatch closure across the worker-count sweep,
// checking I/O invariance and reporting qps and ios/query.
func benchBatch[R any](b *testing.B, nq int, run func(parallelism int) []BatchResult[R]) {
	baseline := int64(-1)
	for _, w := range parallelWorkerCounts {
		w := w
		b.Run("workers="+itoa(w), func(b *testing.B) {
			var ios int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ios = 0
				for _, r := range run(w) {
					ios += r.Stats.IOs()
				}
			}
			b.StopTimer()
			if baseline < 0 {
				baseline = ios
			} else if ios != baseline {
				b.Fatalf("batch I/Os changed with parallelism: %d workers cost %d, serial cost %d", w, ios, baseline)
			}
			b.ReportMetric(float64(nq)*float64(b.N)/b.Elapsed().Seconds(), "queries/sec")
			b.ReportMetric(float64(ios)/float64(nq), "ios/query")
		})
	}
}

// BenchmarkParallelIntervalBatch: stabbing top-k under the Expected
// reduction, the headline Theorem 2 path.
func BenchmarkParallelIntervalBatch(b *testing.B) {
	ix, err := NewIntervalIndex(genFacadeIntervals(1<<15), WithReduction(Expected), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	g := wrand.New(benchSeed + 24)
	const nq = 256
	xs := make([]float64, nq)
	for i := range xs {
		xs[i] = g.Float64() * 100
	}
	benchBatch(b, nq, func(p int) []BatchResult[IntervalItem[int]] {
		return ix.QueryBatch(xs, 16, p)
	})
}

// BenchmarkParallelHalfplaneBatch: halfplane top-k under the WorstCase
// reduction, the Theorem 1 path over the layers-of-maxima black box.
func BenchmarkParallelHalfplaneBatch(b *testing.B) {
	g := wrand.New(benchSeed)
	const n = 1 << 13
	ws := g.UniqueFloats(n, 1e9)
	items := make([]PointItem2[int], n)
	for i := range items {
		items[i] = PointItem2[int]{X: g.NormFloat64() * 10, Y: g.NormFloat64() * 10, Weight: ws[i]}
	}
	ix, err := NewHalfplaneIndex(items, WithReduction(WorstCase), WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	const nq = 128
	qs := make([]HalfplaneQuery, nq)
	for i := range qs {
		th := g.Float64() * 2 * math.Pi
		qs[i] = HalfplaneQuery{A: math.Cos(th), B: math.Sin(th), C: g.NormFloat64() * 8}
	}
	benchBatch(b, nq, func(p int) []BatchResult[PointItem2[int]] {
		return ix.QueryBatch(qs, 10, p)
	})
}

// BenchmarkParallelDominanceBatch: 3D dominance top-k on the hotel
// workload (Theorem 6).
func BenchmarkParallelDominanceBatch(b *testing.B) {
	g := wrand.New(benchSeed)
	const n = 1 << 13
	ws := g.UniqueFloats(n, 1e9)
	items := make([]DominanceItem[int], n)
	for i := range items {
		items[i] = DominanceItem[int]{
			X: 40 + g.ExpFloat64()*120, Y: g.ExpFloat64() * 8, Z: g.Float64() * 10,
			Weight: ws[i],
		}
	}
	ix, err := NewDominanceIndex(items, WithSeed(benchSeed))
	if err != nil {
		b.Fatal(err)
	}
	const nq = 128
	qs := make([]CornerQuery, nq)
	for i := range qs {
		qs[i] = CornerQuery{X: 80 + g.Float64()*300, Y: 2 + g.Float64()*12, Z: 2 + g.Float64()*8}
	}
	benchBatch(b, nq, func(p int) []BatchResult[DominanceItem[int]] {
		return ix.QueryBatch(qs, 10, p)
	})
}
