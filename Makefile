# Development entry points. Everything is stdlib-only Go; no external
# dependencies are fetched by any target.

GO ?= go

.PHONY: all build test race fuzz fuzz-smoke cover bench bench-parallel bench-json bench-check experiments validate examples serve-smoke snap-smoke disk-smoke load-smoke load-curve ingest-smoke cluster-smoke fmt fmt-check vet clean ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .

# Fail if any file is not gofmt-clean (CI gate; `make fmt` fixes).
fmt-check:
	@files=$$(gofmt -l .); \
	if [ -n "$$files" ]; then \
		echo "FAIL: not gofmt-clean:"; echo "$$files"; exit 1; \
	fi; \
	echo "fmt-check: ok"

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fuzz pass over every fuzz target. FUZZTIME scales the session: the
# default is CI-sized, the nightly workflow cranks it to minutes
# (make fuzz FUZZTIME=5m).
FUZZTIME ?= 10s
fuzz:
	$(GO) test -fuzz FuzzTreapOps -fuzztime $(FUZZTIME) ./internal/treap/
	$(GO) test -fuzz FuzzMapOps -fuzztime $(FUZZTIME) ./internal/btree/
	$(GO) test -fuzz FuzzPersistence -fuzztime $(FUZZTIME) ./internal/pstree/
	$(GO) test -fuzz FuzzTreeOps -fuzztime $(FUZZTIME) ./internal/interval/
	$(GO) test -fuzz FuzzOverlayPolicies -fuzztime $(FUZZTIME) ./internal/dynamic/
	$(GO) test -fuzz FuzzDynamicInterval -fuzztime $(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz FuzzDynamicDominance -fuzztime $(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz FuzzShardedInterval -fuzztime $(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz FuzzSnapshotRestore -fuzztime $(FUZZTIME) -run '^$$' .
	$(GO) test -fuzz FuzzBlockStore -fuzztime $(FUZZTIME) -run '^$$' ./internal/em/diskstore/

# Brief fuzz pass over just the oracle-diff targets: cheap enough for
# every CI run, still long enough to shake out op-sequence bugs.
fuzz-smoke:
	$(GO) test -fuzz FuzzOverlayPolicies -fuzztime 5s ./internal/dynamic/
	$(GO) test -fuzz FuzzDynamicInterval -fuzztime 5s -run '^$$' .
	$(GO) test -fuzz FuzzDynamicDominance -fuzztime 5s -run '^$$' .
	$(GO) test -fuzz FuzzShardedInterval -fuzztime 5s -run '^$$' .
	$(GO) test -fuzz FuzzSnapshotRestore -fuzztime 5s -run '^$$' .
	$(GO) test -fuzz FuzzBlockStore -fuzztime 5s -run '^$$' ./internal/em/diskstore/

# Coverage floors on the packages whose correctness the test pyramid leans
# on: the dynamization overlay, the reduction framework, the snapshot
# codec, the disk-backed block store, the cluster serving tier, and the
# root package holding the problem-descriptor engine, registry, and
# persistence layer.
cover:
	@for pkg in ./internal/dynamic ./internal/core ./internal/snap ./internal/em/diskstore ./internal/cluster .; do \
		pct=$$($(GO) test -cover $$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		echo "$$pkg coverage: $$pct%"; \
		awk -v p="$$pct" 'BEGIN { exit !(p >= 70) }' || { echo "FAIL: $$pkg coverage $$pct% is below the 70% floor"; exit 1; }; \
	done

bench:
	$(GO) test -bench=. -benchmem .

# Parallel batch-query throughput: the BenchmarkParallel* sweep over
# worker counts (see also `-exp E24` of cmd/topk-bench).
bench-parallel:
	$(GO) test -bench 'BenchmarkParallel' -benchtime 20x .

# Regenerate the EXPERIMENTS.md tables (E1-E30, E32).
experiments:
	$(GO) run ./cmd/topk-bench -seed 42

# Regenerate the benchmark-regression baseline for this PR. Commit the
# result whenever a cost change is intentional; bench-check diffs
# against the newest checked-in baseline. -disk adds the real-I/O row
# family (physical preads+pwrites on the disk-backed store), which is
# deterministic because physical traffic mirrors the logical trace
# one-for-one (DESIGN.md §13).
BENCH_BASELINE = BENCH_PR10.json
bench-json:
	$(GO) run ./cmd/topk-bench -disk -io-json $(BENCH_BASELINE)

# The CI cost gate: emit a fresh snapshot and diff it against the newest
# checked-in BENCH_*.json. Deterministic I/O counts must not rise; wall
# times are report-only (see cmd/benchdiff).
bench-check:
	@base=$$(ls BENCH_*.json 2>/dev/null | sort -V | tail -1); \
	[ -n "$$base" ] || { echo "FAIL: no BENCH_*.json baseline checked in; run make bench-json"; exit 1; }; \
	$(GO) run ./cmd/topk-bench -disk -io-json /tmp/topk-bench-current.json; \
	echo "bench-check: diffing against $$base"; \
	$(GO) run ./cmd/benchdiff "$$base" /tmp/topk-bench-current.json

# End-to-end smoke of the serving surface: start topk-serve, poll
# /healthz, answer a /query batch, and assert /metrics exposes populated
# histograms. Needs curl.
#
# Every smoke target cleans up with the same discipline: an accumulated
# pid list killed by a single-quoted trap on EXIT, INT, and TERM — so a
# mid-script curl failure, a ^C, or a runner-sent TERM never strands a
# server on its port (single quotes defer $$pids expansion to fire time;
# SIGKILL also collects processes a test left SIGSTOPped).
serve-smoke:
	$(GO) build -o /tmp/topk-serve ./cmd/topk-serve
	@pids=""; trap 'kill -9 $$pids 2>/dev/null' EXIT INT TERM; \
	/tmp/topk-serve -addr 127.0.0.1:18099 -n 5000 -slow-ios 1 & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18099/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://127.0.0.1:18099/healthz | grep -q ok || { echo "FAIL: /healthz"; exit 1; }; \
	curl -sf -X POST http://127.0.0.1:18099/query -d '{"queries":[10,50,90],"k":5}' | grep -q '"ios"' \
		|| { echo "FAIL: /query"; exit 1; }; \
	metrics=$$(curl -sf http://127.0.0.1:18099/metrics); \
	echo "$$metrics" | grep -q 'topk_query_ios_bucket{' || { echo "FAIL: no topk_query_ios_bucket in /metrics"; exit 1; }; \
	count=$$(echo "$$metrics" | sed -n 's/^topk_query_ios_count{index="interval"} //p'); \
	[ "$$count" = "3" ] || { echo "FAIL: topk_query_ios_count = $$count, want 3"; exit 1; }; \
	curl -sf http://127.0.0.1:18099/debug/slow | grep -q 'slow query' || { echo "FAIL: /debug/slow empty"; exit 1; }; \
	curl -sf http://127.0.0.1:18099/problems | grep -q '"halfspace"' || { echo "FAIL: /problems missing registry entries"; exit 1; }; \
	echo "serve-smoke: interval ok"
	@pids=""; trap 'kill -9 $$pids 2>/dev/null' EXIT INT TERM; \
	/tmp/topk-serve -addr 127.0.0.1:18100 -problem dominance -n 5000 -shards 4 -slow-ios 1 & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18100/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf -X POST http://127.0.0.1:18100/query -d '{"queries":[[50,50,50],[90,90,90]],"k":5}' | grep -q '"shards":4' \
		|| { echo "FAIL: /query (sharded dominance)"; exit 1; }; \
	metrics=$$(curl -sf http://127.0.0.1:18100/metrics); \
	echo "$$metrics" | grep -q 'topk_shards{index="dominance"} 4' || { echo "FAIL: topk_shards gauge"; exit 1; }; \
	count=$$(echo "$$metrics" | grep -c '^topk_query_ios_count{index="dominance",shard="'); \
	[ "$$count" = "4" ] || { echo "FAIL: $$count per-shard topk_query_ios_count series, want 4"; exit 1; }; \
	echo "serve-smoke: ok"

# End-to-end smoke of the persistence surface: save a snapshot with
# topk-snap, verify it answer-diffs clean against a fresh build, reshard
# it and verify again, then boot topk-serve cold with -snapshot-dir (which
# seeds the directory), restart it warm, and assert the warm boot restored
# instead of rebuilding and answers a query identically.
snap-smoke:
	$(GO) build -o /tmp/topk-snap ./cmd/topk-snap
	$(GO) build -o /tmp/topk-serve ./cmd/topk-serve
	@rm -rf /tmp/topk-snap-smoke && mkdir -p /tmp/topk-snap-smoke
	/tmp/topk-snap save -dir /tmp/topk-snap-smoke/saved -problem dominance -n 4000 -shards 4 -reduction Expected
	/tmp/topk-snap inspect -dir /tmp/topk-snap-smoke/saved -sections >/dev/null
	/tmp/topk-snap verify -dir /tmp/topk-snap-smoke/saved
	/tmp/topk-snap convert -src /tmp/topk-snap-smoke/saved -dst /tmp/topk-snap-smoke/resharded -shards 2
	/tmp/topk-snap verify -dir /tmp/topk-snap-smoke/resharded
	@pids=""; trap 'kill -9 $$pids 2>/dev/null' EXIT INT TERM; \
	/tmp/topk-serve -addr 127.0.0.1:18101 -n 5000 -snapshot-dir /tmp/topk-snap-smoke/serve & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18101/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://127.0.0.1:18101/metrics | grep -q '^topk_warm_start 0' || { echo "FAIL: first boot should be cold"; exit 1; }; \
	cold=$$(curl -sf -X POST http://127.0.0.1:18101/query -d '{"queries":[10,50,90],"k":5}' | sed 's/"elapsed":"[^"]*",//'); \
	curl -sf -X POST http://127.0.0.1:18101/snapshot | grep -q '"dir"' || { echo "FAIL: POST /snapshot"; exit 1; }; \
	kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	/tmp/topk-serve -addr 127.0.0.1:18101 -n 5000 -snapshot-dir /tmp/topk-snap-smoke/serve & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18101/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://127.0.0.1:18101/metrics | grep -q '^topk_warm_start 1' || { echo "FAIL: second boot should warm-start"; exit 1; }; \
	warm=$$(curl -sf -X POST http://127.0.0.1:18101/query -d '{"queries":[10,50,90],"k":5}' | sed 's/"elapsed":"[^"]*",//'); \
	[ "$$cold" = "$$warm" ] || { echo "FAIL: warm-start answers differ from cold build"; echo "cold: $$cold"; echo "warm: $$warm"; exit 1; }; \
	echo "snap-smoke: ok"

# End-to-end smoke of the disk-backed block store: boot topk-serve with
# -disk-dir so every EM block pages through a real file, answer a query,
# assert the topk_store_* gauges show real traffic and zero faults, then
# crash the server with SIGKILL (leaving the block file behind) and
# restart over the same directory — recovery must reopen/reinitialize
# the file and answer the same query byte-identically.
disk-smoke:
	$(GO) build -o /tmp/topk-serve ./cmd/topk-serve
	@rm -rf /tmp/topk-disk-smoke && mkdir -p /tmp/topk-disk-smoke
	@pids=""; trap 'kill -9 $$pids 2>/dev/null' EXIT INT TERM; \
	/tmp/topk-serve -addr 127.0.0.1:18102 -n 5000 -disk-dir /tmp/topk-disk-smoke & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18102/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	cold=$$(curl -sf -X POST http://127.0.0.1:18102/query -d '{"queries":[10,50,90],"k":5}' | sed 's/"elapsed":"[^"]*",//'); \
	echo "$$cold" | grep -q '"ios"' || { echo "FAIL: /query on the disk-backed store"; exit 1; }; \
	metrics=$$(curl -sf http://127.0.0.1:18102/metrics); \
	reads=$$(echo "$$metrics" | sed -n 's/^topk_store_reads_total{index="interval",policy="lru"} //p'); \
	[ -n "$$reads" ] && [ "$$reads" -gt 0 ] || { echo "FAIL: topk_store_reads_total = '$$reads', want > 0"; exit 1; }; \
	echo "$$metrics" | grep -q '^topk_store_faults_total{index="interval",policy="lru"} 0' \
		|| { echo "FAIL: store faults reported on a healthy run"; exit 1; }; \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	ls /tmp/topk-disk-smoke/*.tkbs >/dev/null 2>&1 || { echo "FAIL: crash left no block file behind"; exit 1; }; \
	/tmp/topk-serve -addr 127.0.0.1:18102 -n 5000 -disk-dir /tmp/topk-disk-smoke & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18102/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	recovered=$$(curl -sf -X POST http://127.0.0.1:18102/query -d '{"queries":[10,50,90],"k":5}' | sed 's/"elapsed":"[^"]*",//'); \
	[ "$$cold" = "$$recovered" ] || { echo "FAIL: answers differ after crash recovery"; \
		echo "cold:      $$cold"; echo "recovered: $$recovered"; exit 1; }; \
	curl -sf http://127.0.0.1:18102/metrics | grep -q '^topk_store_faults_total{index="interval",policy="lru"} 0' \
		|| { echo "FAIL: store faults after crash recovery"; exit 1; }; \
	echo "disk-smoke: ok"

# End-to-end smoke of the request-lifecycle surface: boot topk-serve
# with no budgets, drive a 2-second open-loop loadgen burst, and assert
# the artifact reports non-zero latency percentiles with every request
# answered ok — and that the unbudgeted server leaked zero budget aborts
# or deadline misses into /metrics.
load-smoke:
	$(GO) build -o /tmp/topk-serve ./cmd/topk-serve
	$(GO) build -o /tmp/topk-loadgen ./cmd/topk-loadgen
	@pids=""; trap 'kill -9 $$pids 2>/dev/null' EXIT INT TERM; \
	/tmp/topk-serve -addr 127.0.0.1:18103 -n 5000 & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18103/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	/tmp/topk-loadgen -url http://127.0.0.1:18103 -problem interval \
		-qps 200 -duration 2s -warmup 500ms -out /tmp/topk-load-smoke.json \
		|| { echo "FAIL: loadgen burst"; exit 1; }; \
	p50=$$(sed -n 's/^ *"p50": \([0-9]*\),*/\1/p' /tmp/topk-load-smoke.json); \
	p999=$$(sed -n 's/^ *"p999": \([0-9]*\),*/\1/p' /tmp/topk-load-smoke.json); \
	[ -n "$$p50" ] && [ "$$p50" -gt 0 ] || { echo "FAIL: p50 = '$$p50', want > 0"; exit 1; }; \
	[ -n "$$p999" ] && [ "$$p999" -ge "$$p50" ] || { echo "FAIL: p999 = '$$p999' below p50 = $$p50"; exit 1; }; \
	grep -q '"errors": 0,' /tmp/topk-load-smoke.json || { echo "FAIL: loadgen saw request errors"; exit 1; }; \
	metrics=$$(curl -sf http://127.0.0.1:18103/metrics); \
	echo "$$metrics" | grep -q '^topk_budget_aborts_total{index="interval"} 0' \
		|| { echo "FAIL: unbudgeted server counted budget aborts"; exit 1; }; \
	echo "$$metrics" | grep -q '^topk_deadline_exceeded_total{index="interval"} 0' \
		|| { echo "FAIL: unbudgeted server counted deadline misses"; exit 1; }; \
	echo "$$metrics" | grep -q '^topk_build_info{' || { echo "FAIL: no topk_build_info gauge"; exit 1; }; \
	curl -sf "http://127.0.0.1:18103/debug/trace?n=2" | grep -q '"traceEvents"' \
		|| { echo "FAIL: /debug/trace"; exit 1; }; \
	echo "load-smoke: ok"

# Regenerate the E31 artifact: the latency-vs-QPS curve at shard counts
# {1, 2, 8} with I/O budgets off and on (per-shard budget + top-1
# degradation). The workload is compute-bound (closed loop, batched
# heavy queries) so the budget's early aborts dominate scheduling noise
# in the client-observed tail. The merge step asserts the lifecycle's
# tail contract — budget-on p999 must not exceed budget-off p999 at any
# shard count — and fails the target if enforcement ever makes the tail
# worse.
load-curve:
	$(GO) build -o /tmp/topk-serve ./cmd/topk-serve
	$(GO) build -o /tmp/topk-loadgen ./cmd/topk-loadgen
	@rm -f /tmp/topk-e31-*.json; \
	pids=""; trap 'kill -9 $$pids 2>/dev/null' EXIT INT TERM; \
	for shards in 1 2 8; do \
		/tmp/topk-serve -addr 127.0.0.1:18104 -n 100000 -shards $$shards & \
		pid=$$!; pids="$$pids $$pid"; \
		for i in $$(seq 1 100); do \
			curl -sf http://127.0.0.1:18104/healthz >/dev/null 2>&1 && break; sleep 0.25; \
		done; \
		/tmp/topk-loadgen -url http://127.0.0.1:18104 -problem interval \
			-qps 0 -concurrency 1 -batch 16 -k 100 -duration 3s -warmup 500ms \
			-label "shards=$$shards budget=off" -out /tmp/topk-e31-s$$shards-off.json || exit 1; \
		/tmp/topk-loadgen -url http://127.0.0.1:18104 -problem interval \
			-qps 0 -concurrency 1 -batch 16 -k 100 -duration 3s -warmup 500ms \
			-budget-ios 8 -degrade \
			-label "shards=$$shards budget=on" -out /tmp/topk-e31-s$$shards-on.json || exit 1; \
		kill $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	done; \
	/tmp/topk-loadgen -merge -out E31.json \
		/tmp/topk-e31-s1-off.json /tmp/topk-e31-s1-on.json \
		/tmp/topk-e31-s2-off.json /tmp/topk-e31-s2-on.json \
		/tmp/topk-e31-s8-off.json /tmp/topk-e31-s8-on.json \
		|| { echo "FAIL: E31 merge (budget-on tail exceeded budget-off)"; exit 1; }; \
	echo "load-curve: wrote E31.json"

# End-to-end smoke of the bulk-ingest surface: boot topk-serve with
# -updates under the buffered maintenance policy, bulk-load a 500-item
# NDJSON stream (plus one delete) through POST /ingest, checkpoint into
# the snapshot directory, SIGKILL the server, warm-start it over the
# same directory, and assert the restore kept every ingested item and
# answers the same query batch byte-identically.
ingest-smoke:
	$(GO) build -o /tmp/topk-serve ./cmd/topk-serve
	@rm -rf /tmp/topk-ingest-smoke && mkdir -p /tmp/topk-ingest-smoke
	@pids=""; trap 'kill -9 $$pids 2>/dev/null' EXIT INT TERM; \
	/tmp/topk-serve -addr 127.0.0.1:18105 -n 5000 -updates -maintenance buffered -snapshot-dir /tmp/topk-ingest-smoke/snap & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18105/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	for i in $$(seq 1 500); do \
		echo "{\"lo\": $$i, \"hi\": $$((i+50)), \"weight\": $$((2000000000+i))}"; \
	done > /tmp/topk-ingest-smoke/body.ndjson; \
	echo '{"delete": 2000000001}' >> /tmp/topk-ingest-smoke/body.ndjson; \
	resp=$$(curl -sf -X POST --data-binary @/tmp/topk-ingest-smoke/body.ndjson http://127.0.0.1:18105/ingest); \
	echo "$$resp" | grep -q '"inserted":500' || { echo "FAIL: /ingest inserted: $$resp"; exit 1; }; \
	echo "$$resp" | grep -q '"deleted":1' || { echo "FAIL: /ingest deleted: $$resp"; exit 1; }; \
	echo "$$resp" | grep -q '"items":5499' || { echo "FAIL: /ingest items: $$resp"; exit 1; }; \
	before=$$(curl -sf -X POST http://127.0.0.1:18105/query -d '{"queries":[10,50,90],"k":5}' | sed 's/"elapsed":"[^"]*",//'); \
	curl -sf -X POST http://127.0.0.1:18105/snapshot | grep -q '"dir"' || { echo "FAIL: POST /snapshot"; exit 1; }; \
	kill -9 $$pid 2>/dev/null; wait $$pid 2>/dev/null; \
	/tmp/topk-serve -addr 127.0.0.1:18105 -n 5000 -updates -maintenance buffered -snapshot-dir /tmp/topk-ingest-smoke/snap & \
	pid=$$!; pids="$$pids $$pid"; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18105/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	metrics=$$(curl -sf http://127.0.0.1:18105/metrics); \
	echo "$$metrics" | grep -q '^topk_warm_start 1' || { echo "FAIL: restart should warm-start from the checkpoint"; exit 1; }; \
	echo "$$metrics" | grep -q '^topk_index_items{index="interval"} 5499' \
		|| { echo "FAIL: warm start did not restore the 5499 ingested items"; exit 1; }; \
	after=$$(curl -sf -X POST http://127.0.0.1:18105/query -d '{"queries":[10,50,90],"k":5}' | sed 's/"elapsed":"[^"]*",//'); \
	[ "$$before" = "$$after" ] || { echo "FAIL: warm-start answers differ after bulk ingest"; \
		echo "before: $$before"; echo "after:  $$after"; exit 1; }; \
	echo "ingest-smoke: ok"

# End-to-end smoke of the cluster serving tier: save a 3-shard snapshot,
# boot a coordinator (R=2, degradation armed) plus three topk-node
# replicas that bootstrap themselves by shipping shard files over HTTP,
# and a single-process topk-serve reference over the same snapshot. The
# coordinator's /query answers must be byte-identical to the reference
# (elapsed stripped) — first with all nodes healthy, then with one node
# SIGSTOPped, where hedged reads must still produce the exact answer and
# topk_hedged_requests_total must show the hedges that did it.
cluster-smoke:
	$(GO) build -o /tmp/topk-node ./cmd/topk-node
	$(GO) build -o /tmp/topk-serve ./cmd/topk-serve
	$(GO) build -o /tmp/topk-snap ./cmd/topk-snap
	@rm -rf /tmp/topk-cluster-smoke && mkdir -p /tmp/topk-cluster-smoke
	/tmp/topk-snap save -dir /tmp/topk-cluster-smoke/snap -problem interval -n 5000 -shards 3 -reduction Expected
	@pids=""; trap 'kill -9 $$pids 2>/dev/null' EXIT INT TERM; \
	/tmp/topk-node -coordinator -addr 127.0.0.1:18110 -snapshot-dir /tmp/topk-cluster-smoke/snap \
		-nodes 127.0.0.1:18111,127.0.0.1:18112,127.0.0.1:18113 -replicas 2 -hedge 300ms -deadline 5s -degrade-max & \
	pids="$$pids $$!"; \
	/tmp/topk-node -addr 127.0.0.1:18111 -fetch http://127.0.0.1:18110 -dir /tmp/topk-cluster-smoke/n1 & \
	pids="$$pids $$!"; \
	/tmp/topk-node -addr 127.0.0.1:18112 -fetch http://127.0.0.1:18110 -dir /tmp/topk-cluster-smoke/n2 & \
	pids="$$pids $$!"; \
	/tmp/topk-node -addr 127.0.0.1:18113 -fetch http://127.0.0.1:18110 -dir /tmp/topk-cluster-smoke/n3 & \
	npid=$$!; pids="$$pids $$npid"; \
	/tmp/topk-serve -addr 127.0.0.1:18114 -n 5000 -snapshot-dir /tmp/topk-cluster-smoke/snap & \
	pids="$$pids $$!"; \
	for i in $$(seq 1 100); do \
		curl -sf http://127.0.0.1:18110/readyz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	curl -sf http://127.0.0.1:18110/readyz | grep -q ready || { echo "FAIL: coordinator /readyz never turned ready"; exit 1; }; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18114/healthz >/dev/null 2>&1 && break; sleep 0.2; \
	done; \
	body='{"queries":[10,30,50,70,90],"k":5}'; \
	want=$$(curl -sf -X POST http://127.0.0.1:18114/query -d "$$body" | sed 's/"elapsed":"[^"]*",//'); \
	got=$$(curl -sf -X POST http://127.0.0.1:18110/query -d "$$body" | sed 's/"elapsed":"[^"]*",//'); \
	[ -n "$$want" ] || { echo "FAIL: reference /query"; exit 1; }; \
	[ "$$want" = "$$got" ] || { echo "FAIL: cluster answer differs from single-process reference"; \
		echo "reference: $$want"; echo "cluster:   $$got"; exit 1; }; \
	kill -STOP $$npid; \
	for q in 5 25 45 65 85 95; do \
		body="{\"queries\":[$$q],\"k\":5}"; \
		want=$$(curl -sf -X POST http://127.0.0.1:18114/query -d "$$body" | sed 's/"elapsed":"[^"]*",//'); \
		got=$$(curl -sf -X POST http://127.0.0.1:18110/query -d "$$body" | sed 's/"elapsed":"[^"]*",//'); \
		[ "$$want" = "$$got" ] || { echo "FAIL: hedged answer differs with a stopped node (q=$$q)"; \
			echo "reference: $$want"; echo "cluster:   $$got"; exit 1; }; \
	done; \
	hedged=$$(curl -sf http://127.0.0.1:18110/metrics | sed -n 's/^topk_hedged_requests_total //p'); \
	[ -n "$$hedged" ] && [ "$$hedged" -gt 0 ] || { echo "FAIL: topk_hedged_requests_total = '$$hedged' with a stopped node, want > 0"; exit 1; }; \
	kill -CONT $$npid 2>/dev/null; \
	echo "cluster-smoke: ok ($$hedged hedged shard requests)"

validate:
	$(GO) run ./cmd/topk-validate

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/dating
	$(GO) run ./examples/hotels
	$(GO) run ./examples/geosearch
	$(GO) run ./examples/analytics

clean:
	$(GO) clean ./...

# What CI runs (.github/workflows/ci.yml), runnable locally. CI
# additionally runs staticcheck and govulncheck, which are not vendored
# here.
ci: build vet fmt-check test race cover fuzz-smoke serve-smoke snap-smoke disk-smoke load-smoke ingest-smoke cluster-smoke bench-check
