package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
	"topk/internal/orthorange"
	"topk/internal/snap"
)

// orthoProblem is the engine descriptor for top-k orthogonal range
// reporting in dimension d.
func orthoProblem[T any](d int) problem[orthorange.Box, halfspace.PtN, PointItemN[T]] {
	return problem[orthorange.Box, halfspace.PtN, PointItemN[T]]{
		name:   "ortho",
		dim:    d,
		match:  orthorange.Match,
		lambda: orthorange.Lambda(d),
		pri: func(tr *em.Tracker) core.PrioritizedFactory[orthorange.Box, halfspace.PtN] {
			return orthorange.NewPrioritizedFactory(d, tr)
		},
		max: func(tr *em.Tracker) core.MaxFactory[orthorange.Box, halfspace.PtN] {
			return orthorange.NewMaxFactory(d, tr)
		},
		validate: func(it PointItemN[T]) error {
			if len(it.Coords) != d {
				return fmt.Errorf("topk: item has %d coordinates in dimension %d", len(it.Coords), d)
			}
			for _, c := range it.Coords {
				if math.IsNaN(c) {
					return fmt.Errorf("topk: NaN coordinate")
				}
			}
			return nil
		},
		weight: func(it PointItemN[T]) float64 { return it.Weight },
		toCore: func(it PointItemN[T]) core.Item[halfspace.PtN] {
			coords := append([]float64(nil), it.Coords...)
			return core.Item[halfspace.PtN]{Value: halfspace.PtN{C: coords}, Weight: it.Weight}
		},
		fromCore: func(ci core.Item[halfspace.PtN], st PointItemN[T]) PointItemN[T] {
			st.Coords, st.Weight = ci.Value.C, ci.Weight
			return st
		},
		describe: func(q orthorange.Box, k int) string {
			return fmt.Sprintf("box lo=%v hi=%v k=%d", q.Lo, q.Hi, k)
		},
	}
}

// OrthoIndex answers top-k orthogonal range queries in fixed dimension d:
// given an axis-parallel box, return the k heaviest points inside. The 2D
// case is the companion problem of Rahul & Tao's PODS'15 paper (this
// paper's §2 survey).
type OrthoIndex[T any] struct {
	d int
	facade[orthorange.Box, halfspace.PtN, PointItemN[T]]
}

// NewOrthoIndex builds an index over d-dimensional items. With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewOrthoIndex[T any](items []PointItemN[T], d int, opts ...Option) (*OrthoIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	eng, err := newEngine(orthoProblem[T](d), items, opts)
	if err != nil {
		return nil, err
	}
	return &OrthoIndex[T]{d: d, facade: newFacade(eng)}, nil
}

// Dim returns the index dimension.
func (ix *OrthoIndex[T]) Dim() int { return ix.d }

func (ix *OrthoIndex[T]) box(lo, hi []float64) (orthorange.Box, error) {
	q, err := orthorange.NewBox(lo, hi)
	if err != nil {
		return orthorange.Box{}, err
	}
	if len(lo) != ix.d {
		return orthorange.Box{}, fmt.Errorf("topk: box has %d coordinates in dimension %d", len(lo), ix.d)
	}
	return q, nil
}

// TopK returns the k heaviest points inside the box [lo, hi], heaviest
// first. Malformed boxes (mismatched dimension, lo > hi) return an error.
func (ix *OrthoIndex[T]) TopK(lo, hi []float64, k int) ([]PointItemN[T], error) {
	q, err := ix.box(lo, hi)
	if err != nil {
		return nil, err
	}
	return ix.eng.TopK(q, k), nil
}

// ReportAbove streams every point inside the box with weight ≥ tau.
func (ix *OrthoIndex[T]) ReportAbove(lo, hi []float64, tau float64, visit func(PointItemN[T]) bool) error {
	q, err := orthorange.NewBox(lo, hi)
	if err != nil {
		return err
	}
	ix.eng.ReportAbove(q, tau, visit)
	return nil
}

// Max returns the heaviest point inside the box.
func (ix *OrthoIndex[T]) Max(lo, hi []float64) (PointItemN[T], bool, error) {
	q, err := orthorange.NewBox(lo, hi)
	if err != nil {
		return PointItemN[T]{}, false, err
	}
	it, ok := ix.eng.Max(q)
	return it, ok, nil
}

// QueryBatch answers one top-k box query per BoxQuery on a bounded pool
// of `parallelism` worker goroutines (GOMAXPROCS when <= 0). All boxes
// are validated up front; a malformed box fails the whole batch before
// any query runs. Each query runs in its own cold tracker view, so
// per-query Stats are independent of parallelism; see
// IntervalIndex.QueryBatch for the full contract.
func (ix *OrthoIndex[T]) QueryBatch(qs []BoxQuery, k int, parallelism int) ([]BatchResult[PointItemN[T]], error) {
	return ix.QueryBatchCtx(QueryCtx{}, qs, k, parallelism)
}

// QueryBatchCtx is QueryBatch under a request-lifecycle contract (see
// IntervalIndex.QueryBatchCtx); a zero ctx is exactly QueryBatch.
func (ix *OrthoIndex[T]) QueryBatchCtx(ctx QueryCtx, qs []BoxQuery, k int, parallelism int) ([]BatchResult[PointItemN[T]], error) {
	boxes := make([]orthorange.Box, len(qs))
	for i, q := range qs {
		b, err := orthorange.NewBox(q.Lo, q.Hi)
		if err != nil {
			return nil, fmt.Errorf("topk: batch query %d: %w", i, err)
		}
		if len(q.Lo) != ix.d {
			return nil, fmt.Errorf("topk: batch query %d: box has %d coordinates in dimension %d", i, len(q.Lo), ix.d)
		}
		boxes[i] = b
	}
	return ix.eng.QueryBatchCtx(ctx, boxes, k, parallelism), nil
}

// RestoreOrthoIndex reconstructs an orthogonal range index from a
// snapshot stream written by Snapshot. The ambient dimension is read
// from the snapshot header, so the caller does not re-supply it; see
// RestoreIntervalIndex for the warm-start contract.
func RestoreOrthoIndex[T any](r io.Reader, opts ...Option) (*OrthoIndex[T], error) {
	var d int
	eng, err := restoreEngine(func(h snap.Header) (problem[orthorange.Box, halfspace.PtN, PointItemN[T]], error) {
		if h.Dim < 1 {
			return problem[orthorange.Box, halfspace.PtN, PointItemN[T]]{}, fmt.Errorf("topk: ortho snapshot has invalid dimension %d", h.Dim)
		}
		d = int(h.Dim)
		return orthoProblem[T](d), nil
	}, r, opts)
	if err != nil {
		return nil, err
	}
	return &OrthoIndex[T]{d: d, facade: newFacade(eng)}, nil
}
