package topk

import (
	"fmt"
	"io"
	"math"

	"topk/internal/core"
	"topk/internal/em"
	"topk/internal/halfspace"
	"topk/internal/orthorange"
)

// OrthoIndex answers top-k orthogonal range queries in fixed dimension d:
// given an axis-parallel box, return the k heaviest points inside. The 2D
// case is the companion problem of Rahul & Tao's PODS'15 paper (this
// paper's §2 survey).
type OrthoIndex[T any] struct {
	opts    Options
	d       int
	tracker *em.Tracker
	ob      *indexObs // nil when observability is off
	topk    core.TopK[orthorange.Box, halfspace.PtN]
	dyn     updatableTopK[orthorange.Box, halfspace.PtN] // non-nil when built with WithUpdates
	pri     core.Prioritized[orthorange.Box, halfspace.PtN]
	data    map[float64]T
	n       int
}

// NewOrthoIndex builds an index over d-dimensional items. With
// WithUpdates the index additionally supports Insert and Delete through
// the logarithmic-method overlay.
func NewOrthoIndex[T any](items []PointItemN[T], d int, opts ...Option) (*OrthoIndex[T], error) {
	if d < 1 {
		return nil, fmt.Errorf("topk: dimension %d", d)
	}
	o := applyOptions(opts)
	tracker := o.newTracker()

	cores := make([]core.Item[halfspace.PtN], len(items))
	data := make(map[float64]T, len(items))
	for i, it := range items {
		if len(it.Coords) != d {
			return nil, fmt.Errorf("topk: item %d has %d coordinates in dimension %d", i, len(it.Coords), d)
		}
		cores[i] = core.Item[halfspace.PtN]{Value: halfspace.PtN{C: it.Coords}, Weight: it.Weight}
		if _, dup := data[it.Weight]; dup {
			return nil, fmt.Errorf("topk: duplicate weight %v", it.Weight)
		}
		data[it.Weight] = it.Data
	}

	ix := &OrthoIndex[T]{opts: o, d: d, tracker: tracker, data: data, n: len(items)}
	if o.updates {
		dyn, err := newOverlay(cores, orthorange.Match,
			orthorange.NewPrioritizedFactory(d, tracker),
			orthorange.NewMaxFactory(d, tracker),
			orthorange.Lambda(d), o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk, ix.dyn = dyn, dyn
	} else {
		t, err := buildTopK(cores, orthorange.Match,
			orthorange.NewPrioritizedFactory(d, tracker),
			orthorange.NewMaxFactory(d, tracker),
			orthorange.Lambda(d), o, tracker)
		if err != nil {
			return nil, err
		}
		ix.topk = t
	}
	ix.pri = prioritizedOf(ix.topk)
	ix.ob = newIndexObs("ortho", o, tracker)
	ix.ob.observeShape(ix.n, ix.dyn)
	return ix, nil
}

// Len returns the number of indexed points.
func (ix *OrthoIndex[T]) Len() int { return ix.n }

// Dim returns the index dimension.
func (ix *OrthoIndex[T]) Dim() int { return ix.d }

func (ix *OrthoIndex[T]) wrap(it core.Item[halfspace.PtN]) PointItemN[T] {
	return PointItemN[T]{Coords: it.Value.C, Weight: it.Weight, Data: ix.data[it.Weight]}
}

// TopK returns the k heaviest points inside the box [lo, hi], heaviest
// first. Malformed boxes (mismatched dimension, lo > hi) return an error.
func (ix *OrthoIndex[T]) TopK(lo, hi []float64, k int) ([]PointItemN[T], error) {
	q, err := orthorange.NewBox(lo, hi)
	if err != nil {
		return nil, err
	}
	if len(lo) != ix.d {
		return nil, fmt.Errorf("topk: box has %d coordinates in dimension %d", len(lo), ix.d)
	}
	t0, before := ix.ob.start()
	res := ix.topk.TopK(q, k)
	ix.ob.done(t0, before, func() string { return fmt.Sprintf("box lo=%v hi=%v k=%d", lo, hi, k) })
	out := make([]PointItemN[T], len(res))
	for i, it := range res {
		out[i] = ix.wrap(it)
	}
	return out, nil
}

// ReportAbove streams every point inside the box with weight ≥ tau.
func (ix *OrthoIndex[T]) ReportAbove(lo, hi []float64, tau float64, visit func(PointItemN[T]) bool) error {
	q, err := orthorange.NewBox(lo, hi)
	if err != nil {
		return err
	}
	ix.pri.ReportAbove(q, tau, func(it core.Item[halfspace.PtN]) bool {
		return visit(ix.wrap(it))
	})
	return nil
}

// Max returns the heaviest point inside the box.
func (ix *OrthoIndex[T]) Max(lo, hi []float64) (PointItemN[T], bool, error) {
	q, err := orthorange.NewBox(lo, hi)
	if err != nil {
		return PointItemN[T]{}, false, err
	}
	it, ok := maxOfTopK(ix.topk, q)
	if !ok {
		return PointItemN[T]{}, false, nil
	}
	return ix.wrap(it), true, nil
}

// Insert adds a point. Only indexes built with WithUpdates support
// updates; others return an error.
func (ix *OrthoIndex[T]) Insert(item PointItemN[T]) error {
	if ix.dyn == nil {
		return errStatic(ix.opts.reduction)
	}
	if len(item.Coords) != ix.d {
		return fmt.Errorf("topk: item has %d coordinates in dimension %d", len(item.Coords), ix.d)
	}
	for _, c := range item.Coords {
		if math.IsNaN(c) {
			return fmt.Errorf("topk: NaN coordinate")
		}
	}
	if math.IsNaN(item.Weight) || math.IsInf(item.Weight, 0) {
		return fmt.Errorf("topk: non-finite weight %v", item.Weight)
	}
	if _, dup := ix.data[item.Weight]; dup {
		return fmt.Errorf("topk: duplicate weight %v", item.Weight)
	}
	coords := append([]float64(nil), item.Coords...)
	ci := core.Item[halfspace.PtN]{Value: halfspace.PtN{C: coords}, Weight: item.Weight}
	if err := ix.dyn.Insert(ci); err != nil {
		return err
	}
	ix.data[item.Weight] = item.Data
	ix.n++
	ix.ob.observeShape(ix.n, ix.dyn)
	return nil
}

// Delete removes the point with the given weight, reporting whether it
// was present. Only indexes built with WithUpdates support updates.
func (ix *OrthoIndex[T]) Delete(weight float64) (bool, error) {
	if ix.dyn == nil {
		return false, errStatic(ix.opts.reduction)
	}
	if !ix.dyn.DeleteWeight(weight) {
		return false, nil
	}
	delete(ix.data, weight)
	ix.n--
	ix.ob.observeShape(ix.n, ix.dyn)
	return true, nil
}

// Stats returns the index's simulated I/O counters and space usage.
func (ix *OrthoIndex[T]) Stats() Stats { return statsOf(ix.tracker, ix.opts.reduction) }

// ResetStats zeroes the I/O counters.
func (ix *OrthoIndex[T]) ResetStats() { ix.tracker.ResetCounters() }

// QueryBatch answers one top-k box query per BoxQuery on a bounded pool
// of `parallelism` worker goroutines (GOMAXPROCS when <= 0). All boxes
// are validated up front; a malformed box fails the whole batch before
// any query runs. Each query runs in its own cold tracker view, so
// per-query Stats are independent of parallelism; see
// IntervalIndex.QueryBatch for the full contract.
func (ix *OrthoIndex[T]) QueryBatch(qs []BoxQuery, k int, parallelism int) ([]BatchResult[PointItemN[T]], error) {
	for i, q := range qs {
		if _, err := orthorange.NewBox(q.Lo, q.Hi); err != nil {
			return nil, fmt.Errorf("topk: batch query %d: %w", i, err)
		}
		if len(q.Lo) != ix.d {
			return nil, fmt.Errorf("topk: batch query %d: box has %d coordinates in dimension %d", i, len(q.Lo), ix.d)
		}
	}
	return runBatch(ix.tracker, ix.ob, qs, parallelism, func(q BoxQuery) []PointItemN[T] {
		res, err := ix.TopK(q.Lo, q.Hi, k)
		if err != nil {
			panic(err) // unreachable: validated above
		}
		return res
	}), nil
}

// WriteMetrics renders the index's metrics registry in Prometheus text
// exposition format. It errors unless the index was built WithMetrics.
func (ix *OrthoIndex[T]) WriteMetrics(w io.Writer) error { return ix.ob.writeMetrics(w) }
