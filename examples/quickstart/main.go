// Quickstart: index weighted intervals, ask top-k stabbing queries, and
// update the index — the smallest end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"topk"
)

func main() {
	// A tiny observability scenario: sessions on a server, each an
	// interval [start, end] in minutes, weighted by bytes transferred.
	sessions := []topk.IntervalItem[string]{
		{Lo: 0, Hi: 45, Weight: 912, Data: "alice"},
		{Lo: 10, Hi: 25, Weight: 340, Data: "bob"},
		{Lo: 15, Hi: 80, Weight: 2048, Data: "carol"},
		{Lo: 20, Hi: 22, Weight: 77, Data: "dave"},
		{Lo: 30, Hi: 60, Weight: 1500, Data: "erin"},
		{Lo: 42, Hi: 55, Weight: 101, Data: "frank"},
	}

	// The default reduction is the paper's Theorem 2 (Expected):
	// prioritized + max structures, no asymptotic slowdown, updatable.
	ix, err := topk.NewIntervalIndex(sessions)
	if err != nil {
		log.Fatal(err)
	}

	// Top-k: the 3 heaviest sessions active at minute 21.
	fmt.Println("top-3 sessions active at t=21:")
	for i, s := range ix.TopK(21, 3) {
		fmt.Printf("  %d. %-6s [%3.0f, %3.0f]  %6.0f bytes\n", i+1, s.Data, s.Lo, s.Hi, s.Weight)
	}

	// Max: the single heaviest (top-1) at t=50.
	if m, ok := ix.Max(50); ok {
		fmt.Printf("heaviest at t=50: %s (%.0f bytes)\n", m.Data, m.Weight)
	}

	// Prioritized reporting: everything at t=21 with ≥ 300 bytes.
	fmt.Println("sessions at t=21 with ≥ 300 bytes:")
	ix.ReportAbove(21, 300, func(s topk.IntervalItem[string]) bool {
		fmt.Printf("  %-6s %6.0f bytes\n", s.Data, s.Weight)
		return true
	})

	// Updates (Theorem 2's dynamic path).
	if err := ix.Insert(topk.IntervalItem[string]{Lo: 18, Hi: 70, Weight: 5000, Data: "grace"}); err != nil {
		log.Fatal(err)
	}
	if _, err := ix.Delete(340); err != nil { // bob logs off
		log.Fatal(err)
	}
	fmt.Println("after insert(grace)/delete(bob), top-3 at t=21:")
	for i, s := range ix.TopK(21, 3) {
		fmt.Printf("  %d. %-6s %6.0f bytes\n", i+1, s.Data, s.Weight)
	}

	// Every index reports its simulated external-memory cost.
	st := ix.Stats()
	fmt.Printf("simulated I/O since construction: %d reads, %d writes (%d blocks held)\n",
		st.Reads, st.Writes, st.Blocks)
}
