// Analytics: a streaming scenario for the dynamic top-k indexes. Events
// (latency samples tagged with a timestamp) stream through a sliding
// window held in a RangeIndex: at any moment, "the k slowest requests in
// the last minute" is a top-k range query, and window eviction is the
// Theorem 2 delete path. A 2D OrthoIndex answers the offline variant
// ("slowest requests in any time × shard rectangle").
package main

import (
	"fmt"
	"log"

	"topk"
	"topk/internal/wrand"
)

func main() {
	g := wrand.New(1234)

	// ---- Streaming: sliding-window top-k over a dynamic RangeIndex ----
	const window = 60.0                        // seconds
	ix, err := topk.NewRangeIndex[string](nil) // Expected reduction: dynamic
	if err != nil {
		log.Fatal(err)
	}

	type event struct {
		t float64
		w float64
	}
	var inWindow []event
	now := 0.0
	evict := func() {
		kept := inWindow[:0]
		for _, e := range inWindow {
			if e.t >= now-window {
				kept = append(kept, e)
				continue
			}
			if _, err := ix.Delete(e.w); err != nil {
				log.Fatal(err)
			}
		}
		inWindow = kept
	}

	fmt.Println("streaming 10k events through a 60s window...")
	for i := 0; i < 10000; i++ {
		now += g.ExpFloat64() * 0.05 // ~20 events/sec
		lat := g.ExpFloat64() * 30   // latency ms, heavy tail
		// Weight = latency with a tiny tiebreak so weights stay distinct.
		w := lat + float64(i)*1e-9
		if err := ix.Insert(topk.PointItem1[string]{
			Pos: now, Weight: w, Data: fmt.Sprintf("req-%05d", i),
		}); err != nil {
			log.Fatal(err)
		}
		inWindow = append(inWindow, event{t: now, w: w})
		if i%1000 == 999 {
			evict()
			top := ix.TopK(now-window, now, 3)
			fmt.Printf("t=%7.1fs  window=%5d events  slowest:", now, ix.Len())
			for _, s := range top {
				fmt.Printf("  %s (%.1fms)", s.Data, s.Weight)
			}
			fmt.Println()
		}
	}
	st := ix.Stats()
	fmt.Printf("stream done: %d simulated I/Os across %d inserts/deletes/queries\n\n",
		st.IOs(), 10000*2)

	// ---- Offline: time × shard rectangles over an OrthoIndex ----------
	const n = 20000
	ws := g.UniqueFloats(n, 500)
	pts := make([]topk.PointItemN[string], n)
	for i := range pts {
		pts[i] = topk.PointItemN[string]{
			Coords: []float64{g.Float64() * 3600, float64(g.IntN(32))}, // (time, shard)
			Weight: ws[i],
			Data:   fmt.Sprintf("req-%05d", i),
		}
	}
	oix, err := topk.NewOrthoIndex(pts, 2)
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := []float64{600, 4}, []float64{1200, 8}
	res, err := oix.TopK(lo, hi, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slowest 5 requests in t∈[600,1200]s on shards 4–8:\n")
	for i, r := range res {
		fmt.Printf("  %d. %s  %.1fms  (t=%.0fs shard=%.0f)\n",
			i+1, r.Data, r.Weight, r.Coords[0], r.Coords[1])
	}
}
