// Dating: the paper's Section 1.4 motivating scenario for top-k point
// enclosure (Theorem 5). Members register preference rectangles (age ×
// height); a query member retrieves the k richest members whose
// preferences contain her, then compares the answer across reductions.
package main

import (
	"fmt"
	"log"

	"topk"
	"topk/internal/wrand"
)

type member struct {
	name string
}

func main() {
	const n = 30000
	g := wrand.New(2026)
	salaries := g.UniqueFloats(n, 220000)

	profiles := make([]topk.RectItem[member], n)
	for i := range profiles {
		ageLo := 18 + g.Float64()*42
		htLo := 150 + g.Float64()*35
		profiles[i] = topk.RectItem[member]{
			X1: ageLo, X2: ageLo + 2 + g.ExpFloat64()*8,
			Y1: htLo, Y2: htLo + 3 + g.ExpFloat64()*12,
			Weight: 30000 + salaries[i],
			Data:   member{name: fmt.Sprintf("member-%05d", i)},
		}
	}

	// "Find the 10 gentlemen with the highest salaries such that my age
	// and height fall into their preferred ranges." (§1.4)
	const myAge, myHeight, k = 31.0, 172.0, 10

	for _, r := range []topk.Reduction{topk.Expected, topk.WorstCase, topk.BinarySearch} {
		ix, err := topk.NewEnclosureIndex(profiles, topk.WithReduction(r))
		if err != nil {
			log.Fatal(err)
		}
		ix.ResetStats()
		res := ix.TopK(myAge, myHeight, k)
		st := ix.Stats()
		fmt.Printf("%-12v top-%d (age=%.0f, height=%.0f): ", r, k, myAge, myHeight)
		if len(res) > 0 {
			fmt.Printf("best=%s ($%.0f), worst=$%.0f; %d matches; %d I/Os\n",
				res[0].Data.name, res[0].Weight, res[len(res)-1].Weight, len(res), st.IOs())
		} else {
			fmt.Println("no matches")
		}
	}

	// The reductions must agree exactly (weights are distinct).
	exp, _ := topk.NewEnclosureIndex(profiles, topk.WithReduction(topk.Expected))
	scan, _ := topk.NewEnclosureIndex(profiles, topk.WithReduction(topk.FullScan))
	a, b := exp.TopK(myAge, myHeight, k), scan.TopK(myAge, myHeight, k)
	for i := range a {
		if a[i].Weight != b[i].Weight {
			log.Fatalf("reduction disagreement at rank %d: %v vs %v", i, a[i].Weight, b[i].Weight)
		}
	}
	fmt.Println("Expected reduction agrees with the full-scan oracle ✓")

	// A second query style: who is the richest member that would accept
	// a 45-year-old of 190cm? (top-1 = max reporting)
	if m, ok := exp.Max(45, 190); ok {
		fmt.Printf("richest accepting (45, 190cm): %s, $%.0f, prefers age [%.0f,%.0f] height [%.0f,%.0f]\n",
			m.Data.name, m.Weight, m.X1, m.X2, m.Y1, m.Y2)
	}
}
