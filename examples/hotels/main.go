// Hotels: the paper's Section 1.4 motivating scenario for top-k 3D
// dominance (Theorem 6). Hotels are points (price, distance, 10−security)
// weighted by guest rating; a query asks for the k best-rated hotels
// within a price, distance, and security budget, at interactive speed
// while a full scan pays linear I/O.
package main

import (
	"fmt"
	"log"
	"time"

	"topk"
	"topk/internal/wrand"
)

func main() {
	const n = 40000
	g := wrand.New(7)
	ratings := g.UniqueFloats(n, 5)

	hotels := make([]topk.DominanceItem[string], n)
	for i := range hotels {
		hotels[i] = topk.DominanceItem[string]{
			X:      40 + g.ExpFloat64()*130, // price per night
			Y:      g.ExpFloat64() * 9,      // km from the center
			Z:      g.Float64() * 10,        // 10 − security rating
			Weight: ratings[i],
			Data:   fmt.Sprintf("hotel-%05d", i),
		}
	}

	build := func(r topk.Reduction) *topk.DominanceIndex[string] {
		ix, err := topk.NewDominanceIndex(hotels, topk.WithReduction(r))
		if err != nil {
			log.Fatal(err)
		}
		return ix
	}
	indexed := build(topk.Expected)
	scanned := build(topk.FullScan)

	// "Find the 10 best-rated hotels with price ≤ x, distance ≤ y,
	// security ≥ z." (§1.4)
	queries := []struct {
		price, dist, sec float64
	}{
		{120, 3, 7},
		{250, 8, 5},
		{80, 1.5, 8},
	}
	const k = 10
	for _, q := range queries {
		indexed.ResetStats()
		t0 := time.Now()
		res := indexed.TopK(q.price, q.dist, 10-q.sec, k)
		indexedTime := time.Since(t0)
		iIOs := indexed.Stats().IOs()

		scanned.ResetStats()
		t0 = time.Now()
		res2 := scanned.TopK(q.price, q.dist, 10-q.sec, k)
		scanTime := time.Since(t0)
		sIOs := scanned.Stats().IOs()

		if len(res) != len(res2) {
			log.Fatalf("index and oracle disagree: %d vs %d results", len(res), len(res2))
		}
		fmt.Printf("≤$%.0f, ≤%.1fkm, security ≥%.0f → %d hits\n", q.price, q.dist, q.sec, len(res))
		for i, h := range res {
			if i >= 3 {
				fmt.Printf("   … %d more\n", len(res)-3)
				break
			}
			fmt.Printf("   %d. %-12s rating %.3f  ($%.0f, %.1fkm, sec %.1f)\n",
				i+1, h.Data, h.Weight, h.X, h.Y, 10-h.Z)
		}
		fmt.Printf("   index: %6d I/Os, %8v   |   scan: %6d I/Os, %8v\n\n",
			iIOs, indexedTime.Round(time.Microsecond), sIOs, scanTime.Round(time.Microsecond))
	}

	// The top-1 path (max reporting) answers "the single best hotel".
	if h, ok := indexed.Max(200, 5, 10-6); ok {
		fmt.Printf("best hotel under ($200, 5km, sec ≥ 6): %s, rating %.3f\n", h.Data, h.Weight)
	}
}
