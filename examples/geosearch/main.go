// Geosearch: top-k halfspace reporting (Theorem 3) and circular range
// reporting via the lifting trick (Corollary 1) on a shared set of
// weighted 2D locations — "the most popular venues on one side of the
// river" and "the most popular venues within walking distance".
package main

import (
	"fmt"
	"log"

	"topk"
	"topk/internal/wrand"
)

func main() {
	const n = 25000
	g := wrand.New(99)
	popularity := g.UniqueFloats(n, 1e6)

	pts2 := make([]topk.PointItem2[string], n)
	ptsN := make([]topk.PointItemN[string], n)
	for i := range pts2 {
		x, y := g.NormFloat64()*5, g.NormFloat64()*5
		name := fmt.Sprintf("venue-%05d", i)
		pts2[i] = topk.PointItem2[string]{X: x, Y: y, Weight: popularity[i], Data: name}
		ptsN[i] = topk.PointItemN[string]{Coords: []float64{x, y}, Weight: popularity[i], Data: name}
	}

	half, err := topk.NewHalfplaneIndex(pts2)
	if err != nil {
		log.Fatal(err)
	}
	circ, err := topk.NewCircularIndex(ptsN, 2)
	if err != nil {
		log.Fatal(err)
	}

	// Halfplane: the "river" is the line x + 2y = 3; report the top 5
	// venues on its north-east side.
	a, b, c := 1.0, 2.0, 3.0
	fmt.Printf("top-5 venues with %gx + %gy ≥ %g:\n", a, b, c)
	half.ResetStats()
	for i, v := range half.TopK(a, b, c, 5) {
		fmt.Printf("  %d. %s  popularity %.0f  at (%.2f, %.2f)\n", i+1, v.Data, v.Weight, v.X, v.Y)
	}
	fmt.Printf("  [%d simulated I/Os]\n\n", half.Stats().IOs())

	// Circular: top 5 within 2.5 units of the hotel at (1, -0.5).
	center, r := []float64{1, -0.5}, 2.5
	fmt.Printf("top-5 venues within %.1f of (%.1f, %.1f):\n", r, center[0], center[1])
	circ.ResetStats()
	for i, v := range circ.TopK(center, r, 5) {
		fmt.Printf("  %d. %s  popularity %.0f  at (%.2f, %.2f)\n", i+1, v.Data, v.Weight, v.Coords[0], v.Coords[1])
	}
	fmt.Printf("  [%d simulated I/Os]\n\n", circ.Stats().IOs())

	// Cross-check: a degenerate huge ball and a trivial halfplane both
	// select everything, so their top-10 lists must agree.
	all1 := half.TopK(0, 0, -1, 10) // 0·x + 0·y ≥ −1 is always true
	all2 := circ.TopK([]float64{0, 0}, 1e9, 10)
	for i := range all1 {
		if all1[i].Weight != all2[i].Weight {
			log.Fatalf("halfplane and circular disagree on global top-10 at rank %d", i)
		}
	}
	fmt.Println("global top-10 via halfplane == via circular ✓")

	// 4-dimensional halfspace search (Theorem 3, d ≥ 4): weighted feature
	// vectors, report the top scorers in a linear-constraint region.
	const d = 4
	feat := make([]topk.PointItemN[string], 8000)
	fw := g.UniqueFloats(len(feat), 1e6)
	for i := range feat {
		v := make([]float64, d)
		for j := range v {
			v[j] = g.NormFloat64()
		}
		feat[i] = topk.PointItemN[string]{Coords: v, Weight: fw[i], Data: fmt.Sprintf("item-%04d", i)}
	}
	hs, err := topk.NewHalfspaceIndex(feat, d, topk.WithReduction(topk.WorstCase))
	if err != nil {
		log.Fatal(err)
	}
	normal := []float64{0.5, -0.25, 1, 0.1}
	fmt.Printf("top-3 feature vectors with %v·x ≥ 0.5 (4D, worst-case reduction):\n", normal)
	for i, v := range hs.TopK(normal, 0.5, 3) {
		fmt.Printf("  %d. %s  weight %.0f\n", i+1, v.Data, v.Weight)
	}
}
